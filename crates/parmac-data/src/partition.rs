//! Splitting points across machines (data parallelism and load balancing).
//!
//! ParMAC never moves training data or coordinates: each machine `p` owns a
//! disjoint index set `I_p` with `∪ I_p = {1..N}` (§4.1). Load balancing is
//! "trivial" per §4.3: with identical machines each gets `N/P` points; with
//! heterogeneous machines each gets a share proportional to its processing
//! speed `α_p`.

/// A partition of `0..n_points` into disjoint per-machine index sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shards: Vec<Vec<usize>>,
    n_points: usize,
}

impl Partition {
    /// Number of machines (shards).
    pub fn n_machines(&self) -> usize {
        self.shards.len()
    }

    /// Total number of points across all shards.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// The index set owned by machine `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n_machines()`.
    pub fn shard(&self, p: usize) -> &[usize] {
        &self.shards[p]
    }

    /// Iterates over all shards in machine order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.shards.iter().map(|s| s.as_slice())
    }

    /// Consumes the partition and returns the per-machine index sets.
    pub fn into_shards(self) -> Vec<Vec<usize>> {
        self.shards
    }

    /// Size of the largest shard divided by the size of the smallest non-empty
    /// shard; 1.0 means perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let sizes: Vec<usize> = self.shards.iter().map(|s| s.len()).collect();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().filter(|&s| s > 0).min().unwrap_or(0);
        if min == 0 {
            return f64::INFINITY;
        }
        max as f64 / min as f64
    }
}

/// Partitions `n_points` points into `n_machines` contiguous, (near-)equal
/// shards: the first `n_points % n_machines` shards get one extra point.
///
/// # Panics
///
/// Panics if `n_machines == 0`.
pub fn partition_equal(n_points: usize, n_machines: usize) -> Partition {
    assert!(n_machines > 0, "need at least one machine");
    let base = n_points / n_machines;
    let extra = n_points % n_machines;
    let mut shards = Vec::with_capacity(n_machines);
    let mut start = 0;
    for p in 0..n_machines {
        let size = base + usize::from(p < extra);
        shards.push((start..start + size).collect());
        start += size;
    }
    Partition { shards, n_points }
}

/// Partitions `n_points` points proportionally to the per-machine speeds
/// `alpha` (§4.3: machine `p` gets `N·α_p / Σα` points), by largest-remainder
/// apportionment: every machine first gets `⌊N·α_p / Σα⌋` points, then the
/// leftover points go to the machines with the largest fractional remainders,
/// with speed as the tie-break (equal remainders → the faster machine gets
/// the extra point).
///
/// # Panics
///
/// Panics if `alpha` is empty or contains a non-positive or non-finite value.
pub fn partition_proportional(n_points: usize, alpha: &[f64]) -> Partition {
    assert!(!alpha.is_empty(), "need at least one machine");
    assert!(
        alpha.iter().all(|&a| a > 0.0 && a.is_finite()),
        "machine speeds must be positive and finite"
    );
    let total: f64 = alpha.iter().sum();
    // Largest-remainder apportionment.
    let exact: Vec<f64> = alpha.iter().map(|a| n_points as f64 * a / total).collect();
    let mut sizes: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut remaining = n_points - sizes.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..alpha.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra)
            .unwrap()
            .then_with(|| alpha[b].partial_cmp(&alpha[a]).unwrap())
    });
    for &p in order.iter() {
        if remaining == 0 {
            break;
        }
        sizes[p] += 1;
        remaining -= 1;
    }
    let mut shards = Vec::with_capacity(alpha.len());
    let mut start = 0;
    for &size in &sizes {
        shards.push((start..start + size).collect());
        start += size;
    }
    Partition { shards, n_points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_disjoint_cover(p: &Partition) {
        let mut all: Vec<usize> = p.iter().flatten().copied().collect();
        all.sort_unstable();
        let n = all.len();
        all.dedup();
        assert_eq!(all.len(), n, "shards overlap");
        assert_eq!(all.len(), p.n_points(), "shards do not cover all points");
        if !all.is_empty() {
            assert_eq!(*all.last().unwrap(), p.n_points() - 1);
        }
    }

    #[test]
    fn equal_partition_is_balanced_and_covers() {
        let p = partition_equal(103, 4);
        assert_disjoint_cover(&p);
        let sizes: Vec<usize> = p.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![26, 26, 26, 25]);
        assert!(p.imbalance() <= 26.0 / 25.0 + 1e-12);
    }

    #[test]
    fn equal_partition_exact_division() {
        let p = partition_equal(40, 8);
        assert!(p.iter().all(|s| s.len() == 5));
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_machines_than_points_leaves_empty_shards() {
        let p = partition_equal(3, 5);
        assert_disjoint_cover(&p);
        assert_eq!(p.n_machines(), 5);
        assert_eq!(p.shard(4).len(), 0);
    }

    #[test]
    fn proportional_partition_respects_speeds() {
        // Machine 1 is 3x faster than machine 0 → gets ~3x the data.
        let p = partition_proportional(400, &[1.0, 3.0]);
        assert_disjoint_cover(&p);
        assert_eq!(p.shard(0).len(), 100);
        assert_eq!(p.shard(1).len(), 300);
    }

    #[test]
    fn proportional_partition_handles_rounding() {
        let p = partition_proportional(10, &[1.0, 1.0, 1.0]);
        assert_disjoint_cover(&p);
        let sizes: Vec<usize> = p.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn proportional_remainder_tie_breaks_towards_the_faster_machine() {
        // 10 points over speeds (1, 3): exact shares are 2.5 and 7.5, the
        // fractional remainders tie at 0.5, and the single leftover point must
        // go to the faster machine — regardless of index order.
        let p = partition_proportional(10, &[1.0, 3.0]);
        assert_eq!(
            p.iter().map(|s| s.len()).collect::<Vec<_>>(),
            vec![2, 8],
            "faster machine 1 wins the tied remainder"
        );
        let p = partition_proportional(10, &[3.0, 1.0]);
        assert_eq!(
            p.iter().map(|s| s.len()).collect::<Vec<_>>(),
            vec![8, 2],
            "faster machine 0 wins the tied remainder"
        );
        assert_disjoint_cover(&p);
    }

    #[test]
    fn proportional_equal_speeds_matches_equal_partition_sizes() {
        let pe = partition_equal(57, 4);
        let pp = partition_proportional(57, &[2.0, 2.0, 2.0, 2.0]);
        let se: Vec<usize> = pe.iter().map(|s| s.len()).collect();
        let mut sp: Vec<usize> = pp.iter().map(|s| s.len()).collect();
        // Sizes multiset should match (order of remainder assignment may differ).
        let mut se = se;
        se.sort_unstable();
        sp.sort_unstable();
        assert_eq!(se, sp);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn proportional_rejects_nonpositive_speed() {
        let _ = partition_proportional(10, &[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn equal_rejects_zero_machines() {
        let _ = partition_equal(10, 0);
    }
}
