//! Minibatch iteration with optional shuffling.
//!
//! Within a machine, ParMAC processes its local shard in minibatches and may
//! access them "in random order at each epoch" (within-machine shuffling,
//! §4.3). [`MinibatchIter`] yields index slices over a shard, optionally
//! shuffled with a caller-provided RNG so the schedule is reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

/// Iterator over minibatches of indices.
#[derive(Debug, Clone)]
pub struct MinibatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl MinibatchIter {
    /// Creates an iterator over `indices` in their given order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(indices: &[usize], batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        MinibatchIter {
            order: indices.to_vec(),
            batch_size,
            cursor: 0,
        }
    }

    /// Creates an iterator over a shuffled copy of `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled<R: Rng + ?Sized>(indices: &[usize], batch_size: usize, rng: &mut R) -> Self {
        let mut it = MinibatchIter::new(indices, batch_size);
        it.order.shuffle(rng);
        it
    }

    /// Number of minibatches this iterator will yield in total.
    pub fn n_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Batch size (the final batch may be smaller).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

impl Iterator for MinibatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.order.len() - self.cursor).div_ceil(self.batch_size);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for MinibatchIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn batches_cover_all_indices_in_order() {
        let idx: Vec<usize> = (10..25).collect();
        let batches: Vec<Vec<usize>> = MinibatchIter::new(&idx, 4).collect();
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0], vec![10, 11, 12, 13]);
        assert_eq!(batches[3], vec![22, 23, 24]);
        let flat: Vec<usize> = batches.into_iter().flatten().collect();
        assert_eq!(flat, idx);
    }

    #[test]
    fn shuffled_batches_cover_same_indices() {
        let idx: Vec<usize> = (0..50).collect();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut flat: Vec<usize> = MinibatchIter::shuffled(&idx, 7, &mut rng)
            .flatten()
            .collect();
        flat.sort_unstable();
        assert_eq!(flat, idx);
    }

    #[test]
    fn shuffling_changes_order_with_high_probability() {
        let idx: Vec<usize> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(1);
        let flat: Vec<usize> = MinibatchIter::shuffled(&idx, 100, &mut rng)
            .flatten()
            .collect();
        assert_ne!(flat, idx);
    }

    #[test]
    fn n_batches_and_exact_size() {
        let idx: Vec<usize> = (0..10).collect();
        let it = MinibatchIter::new(&idx, 3);
        assert_eq!(it.n_batches(), 4);
        assert_eq!(it.len(), 4);
        let it = MinibatchIter::new(&idx, 10);
        assert_eq!(it.n_batches(), 1);
        let it = MinibatchIter::new(&[], 3);
        assert_eq!(it.n_batches(), 0);
        assert_eq!(it.count(), 0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_rejected() {
        let _ = MinibatchIter::new(&[1, 2, 3], 0);
    }
}
