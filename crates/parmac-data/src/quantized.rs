//! Byte-quantised feature storage (the SIFT-1B path, §8.4).
//!
//! The paper notes that each SIFT-1B feature "is stored in a single byte
//! rather than as double-precision floats" and that the implementation
//! converts features to `f64` only as needed, one point or minibatch at a
//! time. [`QuantizedDataset`] reproduces that storage scheme: features live in
//! a contiguous `u8` buffer (via [`bytes::Bytes`]) together with the affine
//! dequantisation parameters, and rows are materialised as `f64` on demand.

use bytes::Bytes;
use parmac_linalg::Mat;

/// A dataset whose features are stored as one byte per value.
#[derive(Debug, Clone)]
pub struct QuantizedDataset {
    data: Bytes,
    n_points: usize,
    dim: usize,
    /// Dequantised value = `offset + scale * byte`.
    scale: f64,
    /// Dequantised value = `offset + scale * byte`.
    offset: f64,
}

impl QuantizedDataset {
    /// Quantises an `N × D` matrix of features to bytes using an affine map
    /// that covers the full observed range.
    ///
    /// Values are mapped linearly so that the minimum becomes 0 and the
    /// maximum becomes 255, then rounded. For constant matrices the scale is 1
    /// and everything maps to byte 0.
    pub fn quantize(x: &Mat) -> Self {
        let (lo, hi) = x
            .as_slice()
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let (lo, hi) = if x.is_empty() { (0.0, 1.0) } else { (lo, hi) };
        let range = (hi - lo).max(f64::MIN_POSITIVE);
        let scale = if hi > lo { range / 255.0 } else { 1.0 };
        let bytes: Vec<u8> = x
            .as_slice()
            .iter()
            .map(|&v| (((v - lo) / scale).round().clamp(0.0, 255.0)) as u8)
            .collect();
        QuantizedDataset {
            data: Bytes::from(bytes),
            n_points: x.rows(),
            dim: x.cols(),
            scale,
            offset: lo,
        }
    }

    /// Creates a quantised dataset directly from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n_points * dim`.
    pub fn from_bytes(data: Bytes, n_points: usize, dim: usize, scale: f64, offset: f64) -> Self {
        assert_eq!(data.len(), n_points * dim, "byte buffer length mismatch");
        QuantizedDataset {
            data,
            n_points,
            dim,
            scale,
            offset,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n_points
    }

    /// Returns `true` if the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The raw quantised bytes, row-major (`len() * dim()` of them). This is
    /// what `.bvecs` export writes verbatim.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Memory used by the quantised features, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len()
    }

    /// Memory that the same features would use in `f64`, in bytes.
    pub fn dense_memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Dequantises row `i` into an `f64` vector (the on-the-fly conversion the
    /// paper describes for the Z step).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.n_points, "row {i} out of bounds");
        self.data[i * self.dim..(i + 1) * self.dim]
            .iter()
            .map(|&b| self.offset + self.scale * b as f64)
            .collect()
    }

    /// Dequantises a set of rows into a dense matrix (the per-minibatch
    /// conversion used in the W step).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn rows(&self, indices: &[usize]) -> Mat {
        let mut out = Mat::zeros(indices.len(), self.dim);
        for (k, &i) in indices.iter().enumerate() {
            let row = self.row(i);
            out.set_row(k, &row);
        }
        out
    }

    /// Dequantises the whole dataset into a dense matrix. Intended for tests
    /// and small datasets only.
    pub fn to_dense(&self) -> Mat {
        self.rows(&(0..self.n_points).collect::<Vec<_>>())
    }

    /// Maximum absolute dequantisation error for values inside the quantiser's
    /// range: half of one quantisation step.
    pub fn quantization_step(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = SmallRng::seed_from_u64(0);
        let x = Mat::random_normal(40, 16, &mut rng).scale(3.0);
        let q = QuantizedDataset::quantize(&x);
        let dense = q.to_dense();
        let max_err = (&dense - &x).max_abs();
        assert!(
            max_err <= 0.5 * q.quantization_step() + 1e-12,
            "max_err {max_err} step {}",
            q.quantization_step()
        );
    }

    #[test]
    fn memory_is_one_eighth_of_dense() {
        let x = Mat::zeros(10, 8);
        let q = QuantizedDataset::quantize(&x);
        assert_eq!(q.memory_bytes() * 8, q.dense_memory_bytes());
        assert_eq!(q.memory_bytes(), 80);
    }

    #[test]
    fn row_and_rows_agree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let x = Mat::random_uniform(5, 3, 0.0, 255.0, &mut rng);
        let q = QuantizedDataset::quantize(&x);
        let m = q.rows(&[2, 4]);
        assert_eq!(m.row(0), q.row(2).as_slice());
        assert_eq!(m.row(1), q.row(4).as_slice());
    }

    #[test]
    fn constant_matrix_quantises_without_nan() {
        let x = Mat::filled(4, 4, 7.5);
        let q = QuantizedDataset::quantize(&x);
        let d = q.to_dense();
        assert!(d.as_slice().iter().all(|v| v.is_finite()));
        assert!((d[(0, 0)] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn from_bytes_validates_length() {
        let q = QuantizedDataset::from_bytes(Bytes::from(vec![0u8; 6]), 2, 3, 1.0, 0.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_bytes_rejects_bad_length() {
        let _ = QuantizedDataset::from_bytes(Bytes::from(vec![0u8; 5]), 2, 3, 1.0, 0.0);
    }

    #[test]
    fn preserves_byte_exact_values() {
        // Integers 0..=255 in one row quantise exactly when range is [0,255].
        let vals: Vec<f64> = (0..=255).map(|v| v as f64).collect();
        let x = Mat::from_vec(1, 256, vals.clone());
        let q = QuantizedDataset::quantize(&x);
        let d = q.to_dense();
        for (a, b) in d.as_slice().iter().zip(&vals) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
