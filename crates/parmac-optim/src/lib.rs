//! Stochastic optimisers and single-layer submodels.
//!
//! MAC decomposes a nested model into many independent single-layer submodels
//! (§3): for the binary autoencoder, `L` single-bit linear SVM hash functions
//! and `D` linear least-squares decoders; for deep nets, one logistic
//! regression per hidden unit. ParMAC trains these submodels with SGD as they
//! circulate around the machine ring (§4.1). This crate provides:
//!
//! * [`SgdConfig`] / [`StepSizeSchedule`] — SGD hyper-parameters with the
//!   Bottou-style automatic step-size calibration used by the paper's
//!   reference code (`sgd` project of Bottou & Bousquet).
//! * [`LinearSvm`] — hinge-loss + L2 binary classifier (the single-bit hash
//!   function), trainable by SGD or by full subgradient batch descent.
//! * [`RidgeRegression`] — a linear decoder row, trainable by SGD or exactly.
//! * [`LogisticRegression`] — the per-unit submodel of the K-layer MAC.
//! * [`RbfFeatureMap`] — the Gaussian RBF expansion used for the nonlinear
//!   hash function of §8.4 (fixed random centres, trainable output weights).
//! * [`Submodel`] — the trait ParMAC's W step uses to update and serialise
//!   submodels generically.

#![warn(missing_docs)]

pub mod kernel;
pub mod logistic;
pub mod ridge;
pub mod sgd;
pub mod submodel;
pub mod svm;

pub use kernel::RbfFeatureMap;
pub use logistic::LogisticRegression;
pub use ridge::RidgeRegression;
pub use sgd::{SgdConfig, StepSizeSchedule};
pub use submodel::Submodel;
pub use svm::LinearSvm;
