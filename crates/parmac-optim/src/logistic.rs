//! Logistic regression: the per-hidden-unit submodel of the K-layer MAC
//! (§3.2: "each a single-layer, single-unit submodel that can be solved with
//! existing algorithms (logistic regression)").

use crate::sgd::SgdConfig;
use crate::submodel::Submodel;
use parmac_linalg::vector::dot;
use parmac_linalg::Mat;
use serde::{Deserialize, Serialize};

/// The logistic sigmoid `1 / (1 + e^{-t})`.
pub fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

/// A single logistic unit `σ(wᵀx + b)` trained with cross-entropy loss on
/// targets in `[0, 1]`.
///
/// In the K-layer MAC the targets are the auxiliary coordinates of the layer
/// above, which live in `[0, 1]` because the squashing nonlinearity is a
/// sigmoid — so the unit is trained as a (soft-target) logistic regression.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    lambda: f64,
    updates: u64,
    config: SgdConfig,
}

impl LogisticRegression {
    /// Creates a zero-initialised unit for `dim`-dimensional inputs.
    pub fn new(dim: usize, config: SgdConfig) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            lambda: config.lambda,
            updates: 0,
            config,
        }
    }

    /// The weight vector (excluding the bias).
    pub fn weight_vector(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Activation `σ(wᵀx + b)` for one point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input dimensionality.
    pub fn activate(&self, x: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, x) + self.bias)
    }

    /// Activations for all rows of `x`.
    pub fn activate_all(&self, x: &Mat) -> Vec<f64> {
        (0..x.rows()).map(|i| self.activate(x.row(i))).collect()
    }

    /// Runs `epochs` passes of minibatch SGD on `(x, targets)`.
    pub fn fit_batch(&mut self, x: &Mat, targets: &[f64], epochs: usize) {
        assert_eq!(x.rows(), targets.len(), "fit_batch: target count mismatch");
        let bs = self.config.minibatch_size.max(1);
        for _ in 0..epochs {
            let mut start = 0;
            while start < x.rows() {
                let end = (start + bs).min(x.rows());
                let idx: Vec<usize> = (start..end).collect();
                let xb = x.select_rows(&idx);
                let step = self.config.schedule.step_size(self.updates);
                self.sgd_step(&xb, &targets[start..end], step);
                start = end;
            }
        }
    }
}

impl Submodel for LogisticRegression {
    fn dim(&self) -> usize {
        self.weights.len()
    }

    fn sgd_step(&mut self, x: &Mat, targets: &[f64], step: f64) {
        assert_eq!(x.rows(), targets.len(), "sgd_step: target count mismatch");
        assert_eq!(x.cols(), self.weights.len(), "sgd_step: dim mismatch");
        let n = x.rows().max(1) as f64;
        let mut grad_w = vec![0.0; self.weights.len()];
        let mut grad_b = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            let row = x.row(i);
            let err = self.activate(row) - t;
            for (g, &xi) in grad_w.iter_mut().zip(row) {
                *g += err * xi / n;
            }
            grad_b += err / n;
        }
        for (w, g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= step * (self.lambda * *w + g);
        }
        self.bias -= step * grad_b;
        self.updates += 1;
    }

    fn objective(&self, x: &Mat, targets: &[f64]) -> f64 {
        assert_eq!(x.rows(), targets.len());
        let n = x.rows().max(1) as f64;
        let eps = 1e-12;
        let ce: f64 = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let p = self.activate(x.row(i)).clamp(eps, 1.0 - eps);
                -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / n;
        ce + 0.5 * self.lambda * dot(&self.weights, &self.weights)
    }

    fn predict(&self, x: &Mat) -> Vec<f64> {
        self.activate_all(x)
    }

    fn weights(&self) -> Vec<f64> {
        let mut w = self.weights.clone();
        w.push(self.bias);
        w
    }

    fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.len() + 1,
            "set_weights: length mismatch"
        );
        let (w, b) = weights.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias = b[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_basic_values_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(-1e6).is_finite());
        assert!(sigmoid(1e6).is_finite());
    }

    #[test]
    fn sigmoid_is_symmetric() {
        for t in [-3.0, -0.5, 0.0, 1.2, 4.0] {
            assert!((sigmoid(t) + sigmoid(-t) - 1.0).abs() < 1e-12);
        }
    }

    fn binary_problem(n: usize, seed: u64) -> (Mat, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = Mat::random_normal(n, 3, &mut rng);
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let d = dot(x.row(i), &[1.5, -1.0, 0.0]);
                if d >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        (x, y)
    }

    #[test]
    fn learns_linearly_separable_labels() {
        let (x, y) = binary_problem(400, 0);
        let mut lr = LogisticRegression::new(3, SgdConfig::new().with_eta0(0.5).with_lambda(1e-5));
        lr.fit_batch(&x, &y, 80);
        let acc = lr
            .activate_all(&x)
            .iter()
            .zip(&y)
            .filter(|(p, t)| (**p >= 0.5) == (**t >= 0.5))
            .count() as f64
            / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn objective_decreases_with_training() {
        let (x, y) = binary_problem(150, 1);
        let mut lr = LogisticRegression::new(3, SgdConfig::new());
        let before = lr.objective(&x, &y);
        for _ in 0..300 {
            lr.sgd_step(&x, &y, 0.2);
        }
        assert!(lr.objective(&x, &y) < before);
    }

    #[test]
    fn handles_soft_targets() {
        // Targets strictly inside (0,1): the unit should track the mean when
        // inputs carry no information.
        let x = Mat::zeros(50, 2);
        let t = vec![0.3; 50];
        let mut lr = LogisticRegression::new(2, SgdConfig::new().with_lambda(0.0));
        for _ in 0..2000 {
            lr.sgd_step(&x, &t, 0.5);
        }
        assert!((lr.activate(&[0.0, 0.0]) - 0.3).abs() < 0.01);
    }

    #[test]
    fn weights_round_trip() {
        let mut lr = LogisticRegression::new(2, SgdConfig::new());
        lr.set_weights(&[0.5, -1.0, 0.25]);
        assert_eq!(Submodel::weights(&lr), vec![0.5, -1.0, 0.25]);
        assert_eq!(lr.bias(), 0.25);
    }

    #[test]
    fn objective_is_finite_even_with_extreme_weights() {
        let mut lr = LogisticRegression::new(1, SgdConfig::new());
        lr.set_weights(&[1e4, 0.0]);
        let x = Mat::from_rows(&[vec![1.0], vec![-1.0]]);
        let obj = lr.objective(&x, &[0.0, 1.0]);
        assert!(obj.is_finite());
    }
}
