//! Linear support vector machine (hinge loss + L2), the single-bit hash
//! function submodel of the binary autoencoder (§3.1: "for each of the L
//! single-bit hash functions ... each solvable by fitting a linear SVM").

use crate::sgd::SgdConfig;
use crate::submodel::Submodel;
use parmac_linalg::vector::dot;
use parmac_linalg::Mat;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary linear SVM `sign(wᵀx + b)` trained on ±1 labels.
///
/// The regularised objective is the standard
/// `λ/2 ‖w‖² + (1/n) Σ max(0, 1 − y (wᵀx + b))`.
///
/// # Examples
///
/// ```
/// use parmac_linalg::Mat;
/// use parmac_optim::{LinearSvm, SgdConfig};
///
/// // A linearly separable toy problem: sign of the first feature.
/// let x = Mat::from_rows(&[vec![1.0, 0.3], vec![2.0, -0.1], vec![-1.5, 0.2], vec![-0.7, -0.4]]);
/// let y = vec![1.0, 1.0, -1.0, -1.0];
/// let mut svm = LinearSvm::new(2, SgdConfig::new().with_eta0(0.5));
/// svm.fit_batch(&x, &y, 200);
/// assert_eq!(svm.classify(&x), vec![1.0, 1.0, -1.0, -1.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    lambda: f64,
    updates: u64,
    config: SgdConfig,
}

impl LinearSvm {
    /// Creates a zero-initialised SVM for `dim`-dimensional inputs.
    pub fn new(dim: usize, config: SgdConfig) -> Self {
        LinearSvm {
            weights: vec![0.0; dim],
            bias: 0.0,
            lambda: config.lambda,
            updates: 0,
            config,
        }
    }

    /// Creates an SVM with small random weights, useful to break symmetry.
    pub fn random_init<R: Rng + ?Sized>(dim: usize, config: SgdConfig, rng: &mut R) -> Self {
        let mut svm = LinearSvm::new(dim, config);
        for w in &mut svm.weights {
            *w = rng.gen_range(-0.01..0.01);
        }
        svm
    }

    /// The weight vector `w` (excluding the bias).
    pub fn weight_vector(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Number of SGD updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Decision value `wᵀx + b` for a single point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input dimensionality.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Classifies the rows of `x` into `+1.0` / `-1.0`.
    pub fn classify(&self, x: &Mat) -> Vec<f64> {
        self.predict(x)
            .into_iter()
            .map(|d| if d >= 0.0 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Runs `epochs` full passes of minibatch SGD over `(x, y)` with the
    /// configured schedule. Labels must be ±1.
    pub fn fit_batch(&mut self, x: &Mat, y: &[f64], epochs: usize) {
        assert_eq!(x.rows(), y.len(), "fit_batch: label count mismatch");
        let bs = self.config.minibatch_size.max(1);
        for _ in 0..epochs {
            let mut start = 0;
            while start < x.rows() {
                let end = (start + bs).min(x.rows());
                let idx: Vec<usize> = (start..end).collect();
                let xb = x.select_rows(&idx);
                let yb = &y[start..end];
                let step = self.config.schedule.step_size(self.updates);
                self.sgd_step(&xb, yb, step);
                start = end;
            }
        }
    }

    /// Hinge-loss accuracy (fraction of correctly classified points).
    pub fn accuracy(&self, x: &Mat, y: &[f64]) -> f64 {
        if y.is_empty() {
            return 1.0;
        }
        let pred = self.classify(x);
        let correct = pred
            .iter()
            .zip(y)
            .filter(|(p, t)| (**p > 0.0) == (**t > 0.0))
            .count();
        correct as f64 / y.len() as f64
    }
}

impl Submodel for LinearSvm {
    fn dim(&self) -> usize {
        self.weights.len()
    }

    fn sgd_step(&mut self, x: &Mat, targets: &[f64], step: f64) {
        assert_eq!(x.rows(), targets.len(), "sgd_step: label count mismatch");
        assert_eq!(x.cols(), self.weights.len(), "sgd_step: dim mismatch");
        let n = x.rows().max(1) as f64;
        // Subgradient of λ/2‖w‖² + (1/n)Σ hinge.
        let mut grad_w = vec![0.0; self.weights.len()];
        let mut grad_b = 0.0;
        for (i, &y) in targets.iter().enumerate() {
            let row = x.row(i);
            let margin = y * self.decision(row);
            if margin < 1.0 {
                for (g, &xi) in grad_w.iter_mut().zip(row) {
                    *g -= y * xi / n;
                }
                grad_b -= y / n;
            }
        }
        for (w, g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= step * (self.lambda * *w + g);
        }
        self.bias -= step * grad_b;
        self.updates += 1;
    }

    fn objective(&self, x: &Mat, targets: &[f64]) -> f64 {
        assert_eq!(x.rows(), targets.len());
        let n = x.rows().max(1) as f64;
        let hinge: f64 = targets
            .iter()
            .enumerate()
            .map(|(i, &y)| (1.0 - y * self.decision(x.row(i))).max(0.0))
            .sum::<f64>()
            / n;
        let reg = 0.5 * self.lambda * dot(&self.weights, &self.weights);
        hinge + reg
    }

    fn predict(&self, x: &Mat) -> Vec<f64> {
        (0..x.rows()).map(|i| self.decision(x.row(i))).collect()
    }

    fn weights(&self) -> Vec<f64> {
        let mut w = self.weights.clone();
        w.push(self.bias);
        w
    }

    fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.len() + 1,
            "set_weights: length mismatch"
        );
        let (w, b) = weights.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias = b[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn separable_problem(n: usize, seed: u64) -> (Mat, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut x = Mat::random_normal(n, 4, &mut rng);
        let true_w = [1.0, -2.0, 0.5, 0.0];
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let d = dot(x.row(i), &true_w) + 0.3;
                if d >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        // Push points away from the boundary a little to make it cleanly separable.
        for i in 0..n {
            let d = dot(x.row(i), &true_w) + 0.3;
            if d.abs() < 0.2 {
                let s = if d >= 0.0 { 0.3 } else { -0.3 };
                x.row_mut(i)[0] += s;
            }
        }
        (x, y)
    }

    #[test]
    fn learns_separable_problem_to_high_accuracy() {
        let (x, y) = separable_problem(300, 0);
        let mut svm = LinearSvm::new(4, SgdConfig::new().with_eta0(0.1).with_lambda(1e-4));
        svm.fit_batch(&x, &y, 50);
        assert!(
            svm.accuracy(&x, &y) > 0.95,
            "accuracy {}",
            svm.accuracy(&x, &y)
        );
    }

    #[test]
    fn sgd_step_reduces_objective_on_average() {
        let (x, y) = separable_problem(100, 1);
        let mut svm = LinearSvm::new(4, SgdConfig::new());
        let before = svm.objective(&x, &y);
        for _ in 0..100 {
            svm.sgd_step(&x, &y, 0.05);
        }
        let after = svm.objective(&x, &y);
        assert!(after < before, "objective went from {before} to {after}");
    }

    #[test]
    fn weights_round_trip_preserves_decisions() {
        let (x, y) = separable_problem(50, 2);
        let mut svm = LinearSvm::new(4, SgdConfig::new().with_eta0(0.1));
        svm.fit_batch(&x, &y, 10);
        let w = Submodel::weights(&svm);
        let mut copy = LinearSvm::new(4, SgdConfig::new());
        copy.set_weights(&w);
        assert_eq!(svm.predict(&x), copy.predict(&x));
        assert_eq!(w.len(), svm.n_parameters());
    }

    #[test]
    fn objective_includes_regulariser() {
        let mut svm = LinearSvm::new(2, SgdConfig::new().with_lambda(1.0));
        svm.set_weights(&[3.0, 4.0, 0.0]);
        let x = Mat::from_rows(&[vec![0.0, 0.0]]);
        // hinge = max(0, 1 - y*0) = 1, reg = 0.5 * 1 * 25 = 12.5
        let obj = svm.objective(&x, &[1.0]);
        assert!((obj - 13.5).abs() < 1e-12);
    }

    #[test]
    fn classify_outputs_plus_minus_one() {
        let svm = LinearSvm::new(2, SgdConfig::new());
        let x = Mat::from_rows(&[vec![1.0, 1.0], vec![-1.0, -1.0]]);
        let c = svm.classify(&x);
        assert!(c.iter().all(|v| *v == 1.0 || *v == -1.0));
    }

    #[test]
    fn accuracy_on_empty_input_is_one() {
        let svm = LinearSvm::new(2, SgdConfig::new());
        assert_eq!(svm.accuracy(&Mat::zeros(0, 2), &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn sgd_step_rejects_wrong_dimension() {
        let mut svm = LinearSvm::new(3, SgdConfig::new());
        svm.sgd_step(&Mat::zeros(1, 2), &[1.0], 0.1);
    }

    #[test]
    fn random_init_is_small_and_seeded() {
        let mut rng = SmallRng::seed_from_u64(3);
        let svm = LinearSvm::random_init(10, SgdConfig::new(), &mut rng);
        assert!(svm.weight_vector().iter().all(|w| w.abs() < 0.01));
    }
}
