//! The [`Submodel`] trait: what ParMAC's W step needs from a single-layer model.
//!
//! In MAC, the W step decomposes into `M` independent submodels (hash
//! functions and decoders for a BA, hidden units for a deep net). ParMAC sends
//! these submodels around the machine ring and updates each with SGD on every
//! machine's local shard. The trait below is the minimal contract that makes
//! that possible: stochastic updates on a minibatch, an objective for
//! monitoring/step-size calibration, prediction, and weight (de)serialisation
//! so the parameters — and only the parameters — can be communicated.

use parmac_linalg::Mat;

/// A single-layer submodel trainable by SGD inside ParMAC's W step.
///
/// Implementations are supplied minibatches as a dense matrix `x` (one row per
/// point, already in the submodel's input space) and one scalar target per
/// row. This covers all the submodels the paper uses: binary targets (±1) for
/// the SVM hash functions, real targets for the decoder rows, and 0/1 targets
/// for logistic units.
pub trait Submodel: Send {
    /// Input dimensionality (including the bias component, if the model
    /// augments its input).
    fn dim(&self) -> usize;

    /// Performs one SGD step on the minibatch `(x, targets)` with step size
    /// `step`: the weights are moved along the negative (sub)gradient of the
    /// regularised average loss over the minibatch.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.rows() != targets.len()` or if `x.cols()`
    /// does not match the submodel's expected raw input dimensionality.
    fn sgd_step(&mut self, x: &Mat, targets: &[f64], step: f64);

    /// Regularised average objective on `(x, targets)`; used for step-size
    /// calibration and convergence monitoring.
    fn objective(&self, x: &Mat, targets: &[f64]) -> f64;

    /// Raw (pre-threshold / pre-link) predictions for the rows of `x`.
    fn predict(&self, x: &Mat) -> Vec<f64>;

    /// Serialises the parameters to a flat vector (what ParMAC sends over the
    /// ring; no data or coordinates are ever included).
    fn weights(&self) -> Vec<f64>;

    /// Overwrites the parameters from a flat vector produced by
    /// [`weights`](Submodel::weights).
    ///
    /// # Panics
    ///
    /// Implementations panic if the length does not match.
    fn set_weights(&mut self, weights: &[f64]);

    /// Number of parameters (length of [`weights`](Submodel::weights)).
    fn n_parameters(&self) -> usize {
        self.weights().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial 1-parameter mean-estimator submodel used to exercise the
    /// trait's default method and object safety.
    #[derive(Debug, Default)]
    struct MeanModel {
        w: f64,
    }

    impl Submodel for MeanModel {
        fn dim(&self) -> usize {
            1
        }
        fn sgd_step(&mut self, x: &Mat, targets: &[f64], step: f64) {
            assert_eq!(x.rows(), targets.len());
            let grad: f64 = targets.iter().map(|t| self.w - t).sum::<f64>() / targets.len() as f64;
            self.w -= step * grad;
        }
        fn objective(&self, _x: &Mat, targets: &[f64]) -> f64 {
            targets.iter().map(|t| (self.w - t).powi(2)).sum::<f64>() / targets.len() as f64
        }
        fn predict(&self, x: &Mat) -> Vec<f64> {
            vec![self.w; x.rows()]
        }
        fn weights(&self) -> Vec<f64> {
            vec![self.w]
        }
        fn set_weights(&mut self, weights: &[f64]) {
            assert_eq!(weights.len(), 1);
            self.w = weights[0];
        }
    }

    #[test]
    fn trait_is_object_safe_and_default_method_works() {
        let m: Box<dyn Submodel> = Box::new(MeanModel::default());
        assert_eq!(m.n_parameters(), 1);
        assert_eq!(m.dim(), 1);
    }

    #[test]
    fn sgd_moves_towards_target_mean() {
        let mut m = MeanModel::default();
        let x = Mat::zeros(4, 1);
        let targets = [2.0, 2.0, 2.0, 2.0];
        for _ in 0..200 {
            m.sgd_step(&x, &targets, 0.1);
        }
        assert!((m.w - 2.0).abs() < 1e-3);
    }

    #[test]
    fn weights_round_trip() {
        let mut m = MeanModel::default();
        m.set_weights(&[3.5]);
        assert_eq!(m.weights(), vec![3.5]);
    }
}
