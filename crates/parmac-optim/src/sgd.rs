//! SGD configuration and step-size schedules.
//!
//! The paper trains encoder/decoder submodels with "the SGD code from Bottou
//! and Bousquet (2008) ... The SGD step size is tuned automatically in each
//! iteration by examining the first 1 000 datapoints" (§8.1). We reproduce
//! both ingredients: the `1/(λ(t+t0))`-style decaying schedule used by
//! Bottou's `sgd`, and the calibration loop that picks the initial step size
//! by trying a small grid on a prefix of the data.

use serde::{Deserialize, Serialize};

/// Step-size schedule for SGD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSizeSchedule {
    /// Constant step size `eta0`.
    Constant {
        /// The fixed step size.
        eta0: f64,
    },
    /// Bottou-style decay `eta_t = eta0 / (1 + eta0 * lambda * t)`, which is a
    /// Robbins–Monro schedule for λ-strongly-convex objectives.
    BottouDecay {
        /// Initial step size.
        eta0: f64,
        /// Regularisation / strong-convexity constant used in the decay.
        lambda: f64,
    },
    /// Generic inverse-time decay `eta_t = eta0 / (1 + t / t0)`.
    InverseTime {
        /// Initial step size.
        eta0: f64,
        /// Time constant controlling how quickly the step size decays.
        t0: f64,
    },
}

impl StepSizeSchedule {
    /// Step size to use at update counter `t` (0-based).
    pub fn step_size(&self, t: u64) -> f64 {
        match *self {
            StepSizeSchedule::Constant { eta0 } => eta0,
            StepSizeSchedule::BottouDecay { eta0, lambda } => {
                eta0 / (1.0 + eta0 * lambda * t as f64)
            }
            StepSizeSchedule::InverseTime { eta0, t0 } => eta0 / (1.0 + t as f64 / t0),
        }
    }

    /// Returns a copy of the schedule with its initial step size replaced.
    pub fn with_eta0(&self, new_eta0: f64) -> StepSizeSchedule {
        match *self {
            StepSizeSchedule::Constant { .. } => StepSizeSchedule::Constant { eta0: new_eta0 },
            StepSizeSchedule::BottouDecay { lambda, .. } => StepSizeSchedule::BottouDecay {
                eta0: new_eta0,
                lambda,
            },
            StepSizeSchedule::InverseTime { t0, .. } => {
                StepSizeSchedule::InverseTime { eta0: new_eta0, t0 }
            }
        }
    }
}

/// Configuration for stochastic gradient descent on a submodel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Step-size schedule.
    pub schedule: StepSizeSchedule,
    /// L2 regularisation strength applied by the submodels.
    pub lambda: f64,
    /// Minibatch size used when a caller lets the submodel form its own
    /// minibatches.
    pub minibatch_size: usize,
    /// Number of points examined by [`calibrate_eta0`] (the paper uses the
    /// first 1 000 data points).
    pub calibration_points: usize,
}

impl SgdConfig {
    /// A sensible default configuration: Bottou decay with `eta0 = 0.01`,
    /// `lambda = 1e-4`, minibatches of 16, calibration on 1 000 points.
    pub fn new() -> Self {
        SgdConfig {
            schedule: StepSizeSchedule::BottouDecay {
                eta0: 0.01,
                lambda: 1e-4,
            },
            lambda: 1e-4,
            minibatch_size: 16,
            calibration_points: 1000,
        }
    }

    /// Sets the initial step size, keeping the schedule shape.
    pub fn with_eta0(mut self, eta0: f64) -> Self {
        self.schedule = self.schedule.with_eta0(eta0);
        self
    }

    /// Sets the L2 regularisation strength (also used by the decay schedule if
    /// it is [`StepSizeSchedule::BottouDecay`]).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        if let StepSizeSchedule::BottouDecay { eta0, .. } = self.schedule {
            self.schedule = StepSizeSchedule::BottouDecay { eta0, lambda };
        }
        self
    }

    /// Sets the minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn with_minibatch_size(mut self, size: usize) -> Self {
        assert!(size > 0, "minibatch size must be positive");
        self.minibatch_size = size;
        self
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig::new()
    }
}

/// Picks the best initial step size from `candidates` by running the supplied
/// evaluation closure, which should perform a short SGD run on a prefix of the
/// data (the paper uses the first 1 000 points) and return the resulting
/// objective value (lower is better).
///
/// Returns the candidate with the lowest finite objective; if every candidate
/// produces a non-finite objective the smallest candidate is returned as a
/// safe fallback.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn calibrate_eta0<F: FnMut(f64) -> f64>(candidates: &[f64], mut trial_objective: F) -> f64 {
    assert!(!candidates.is_empty(), "need at least one candidate eta0");
    let mut best = None::<(f64, f64)>;
    for &eta in candidates {
        let obj = trial_objective(eta);
        if obj.is_finite() && best.is_none_or(|(_, b)| obj < b) {
            best = Some((eta, obj));
        }
    }
    match best {
        Some((eta, _)) => eta,
        None => candidates.iter().copied().fold(f64::INFINITY, f64::min),
    }
}

/// The default grid of candidate step sizes used for calibration.
pub fn default_eta0_grid() -> Vec<f64> {
    vec![1e-4, 1e-3, 1e-2, 1e-1, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_never_decays() {
        let s = StepSizeSchedule::Constant { eta0: 0.5 };
        assert_eq!(s.step_size(0), 0.5);
        assert_eq!(s.step_size(1_000_000), 0.5);
    }

    #[test]
    fn bottou_decay_is_monotone_decreasing() {
        let s = StepSizeSchedule::BottouDecay {
            eta0: 0.1,
            lambda: 1e-2,
        };
        let mut prev = f64::INFINITY;
        for t in 0..100 {
            let eta = s.step_size(t);
            assert!(eta <= prev);
            assert!(eta > 0.0);
            prev = eta;
        }
    }

    #[test]
    fn decay_satisfies_robbins_monro_divergence_heuristic() {
        // Sum of eta_t over a long horizon keeps growing (≈ log divergence),
        // while sum of eta_t^2 converges — check the partial sums behave.
        let s = StepSizeSchedule::BottouDecay {
            eta0: 1.0,
            lambda: 1.0,
        };
        let sum1: f64 = (0..10_000).map(|t| s.step_size(t)).sum();
        let sum2: f64 = (0..10_000).map(|t| s.step_size(t).powi(2)).sum();
        assert!(sum1 > 5.0);
        assert!(sum2 < 3.0);
    }

    #[test]
    fn with_eta0_preserves_shape() {
        let s = StepSizeSchedule::InverseTime { eta0: 1.0, t0: 5.0 };
        let s2 = s.with_eta0(0.1);
        assert_eq!(s2, StepSizeSchedule::InverseTime { eta0: 0.1, t0: 5.0 });
    }

    #[test]
    fn config_builders() {
        let cfg = SgdConfig::new()
            .with_eta0(0.3)
            .with_lambda(0.01)
            .with_minibatch_size(8);
        assert_eq!(cfg.minibatch_size, 8);
        assert_eq!(cfg.lambda, 0.01);
        assert_eq!(cfg.schedule.step_size(0), 0.3);
    }

    #[test]
    fn calibration_picks_lowest_objective() {
        // Pretend the objective is minimised at eta = 0.01.
        let eta = calibrate_eta0(&[1e-3, 1e-2, 1e-1], |e| (e.ln() - 0.01f64.ln()).powi(2));
        assert_eq!(eta, 1e-2);
    }

    #[test]
    fn calibration_falls_back_when_all_diverge() {
        let eta = calibrate_eta0(&[0.5, 0.1], |_| f64::NAN);
        assert_eq!(eta, 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn calibration_rejects_empty_grid() {
        let _ = calibrate_eta0(&[], |_| 0.0);
    }
}
