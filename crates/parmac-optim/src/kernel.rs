//! Gaussian RBF feature map for the nonlinear (kernel SVM) hash function.
//!
//! §8.4 of the paper trains "a kernel SVM using m Gaussian radial basis
//! functions (RBF) with fixed bandwidth σ and centres. This means the only
//! trainable parameters are the weights, so the MAC algorithm does not change
//! except that it operates on an m-dimensional input vector of kernel values".
//! [`RbfFeatureMap`] is that fixed expansion: centres drawn from the training
//! set, a shared bandwidth, and `transform` producing the kernel-value matrix
//! on which the ordinary linear submodels are then trained.

use parmac_linalg::vector::squared_distance;
use parmac_linalg::Mat;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fixed Gaussian RBF feature map `x ↦ [exp(−‖x−c_j‖²/(2σ²))]_{j=1..m}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RbfFeatureMap {
    centres: Mat,
    bandwidth: f64,
}

impl RbfFeatureMap {
    /// Creates a feature map with explicit centres (one per row) and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth <= 0` or `centres` is empty.
    pub fn new(centres: Mat, bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(centres.rows() > 0, "need at least one centre");
        RbfFeatureMap { centres, bandwidth }
    }

    /// Picks `m` centres at random from the rows of `data` (the paper picks
    /// its 2 000 centres "at random from the training set").
    ///
    /// # Panics
    ///
    /// Panics if `data` has no rows, `m == 0`, or `bandwidth <= 0`.
    pub fn from_data<R: Rng + ?Sized>(data: &Mat, m: usize, bandwidth: f64, rng: &mut R) -> Self {
        assert!(data.rows() > 0, "need data to sample centres from");
        assert!(m > 0, "need at least one centre");
        let mut indices: Vec<usize> = (0..data.rows()).collect();
        indices.shuffle(rng);
        indices.truncate(m.min(data.rows()));
        // If more centres than points were requested, reuse points cyclically.
        while indices.len() < m {
            indices.push(indices[indices.len() % data.rows()]);
        }
        RbfFeatureMap::new(data.select_rows(&indices), bandwidth)
    }

    /// Picks a bandwidth with the median heuristic: the median pairwise
    /// distance among a sample of rows of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` has fewer than two rows.
    pub fn median_bandwidth<R: Rng + ?Sized>(data: &Mat, sample: usize, rng: &mut R) -> f64 {
        assert!(data.rows() >= 2, "need at least two points");
        let mut indices: Vec<usize> = (0..data.rows()).collect();
        indices.shuffle(rng);
        indices.truncate(sample.max(2).min(data.rows()));
        let mut dists = Vec::new();
        for (a, &i) in indices.iter().enumerate() {
            for &j in indices.iter().skip(a + 1) {
                dists.push(squared_distance(data.row(i), data.row(j)).sqrt());
            }
        }
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dists[dists.len() / 2].max(f64::MIN_POSITIVE)
    }

    /// Number of basis functions `m` (the output dimensionality).
    pub fn n_centres(&self) -> usize {
        self.centres.rows()
    }

    /// The bandwidth σ.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Maps one point to its `m` kernel values.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the centre dimensionality.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        let denom = 2.0 * self.bandwidth * self.bandwidth;
        (0..self.centres.rows())
            .map(|j| (-squared_distance(x, self.centres.row(j)) / denom).exp())
            .collect()
    }

    /// Maps every row of `x` to kernel values, producing an `N × m` matrix.
    pub fn transform(&self, x: &Mat) -> Mat {
        let mut out = Mat::zeros(x.rows(), self.n_centres());
        for i in 0..x.rows() {
            let k = self.transform_one(x.row(i));
            out.set_row(i, &k);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_values_lie_in_unit_interval_and_peak_at_centres() {
        let centres = Mat::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
        let map = RbfFeatureMap::new(centres, 1.0);
        let k = map.transform_one(&[0.0, 0.0]);
        assert!((k[0] - 1.0).abs() < 1e-12);
        assert!(k[1] < 1e-5);
        assert!(k.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn wider_bandwidth_gives_larger_kernel_values() {
        let centres = Mat::from_rows(&[vec![0.0]]);
        let narrow = RbfFeatureMap::new(centres.clone(), 0.5);
        let wide = RbfFeatureMap::new(centres, 5.0);
        let x = [2.0];
        assert!(wide.transform_one(&x)[0] > narrow.transform_one(&x)[0]);
    }

    #[test]
    fn from_data_selects_requested_number_of_centres() {
        let mut rng = SmallRng::seed_from_u64(0);
        let data = Mat::random_normal(30, 4, &mut rng);
        let map = RbfFeatureMap::from_data(&data, 10, 1.0, &mut rng);
        assert_eq!(map.n_centres(), 10);
        let more = RbfFeatureMap::from_data(&data, 40, 1.0, &mut rng);
        assert_eq!(more.n_centres(), 40);
    }

    #[test]
    fn transform_shape_matches() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = Mat::random_normal(20, 3, &mut rng);
        let map = RbfFeatureMap::from_data(&data, 7, 2.0, &mut rng);
        let k = map.transform(&data);
        assert_eq!(k.shape(), (20, 7));
    }

    #[test]
    fn median_bandwidth_is_positive_and_scales_with_data() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data = Mat::random_normal(50, 5, &mut rng);
        let bw = RbfFeatureMap::median_bandwidth(&data, 30, &mut rng);
        assert!(bw > 0.0);
        let scaled = data.scale(10.0);
        let bw_scaled = RbfFeatureMap::median_bandwidth(&scaled, 30, &mut rng);
        assert!(bw_scaled > 5.0 * bw);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = RbfFeatureMap::new(Mat::from_rows(&[vec![0.0]]), 0.0);
    }
}
