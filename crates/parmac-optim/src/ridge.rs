//! Ridge (L2-regularised least-squares) regression: one row of the binary
//! autoencoder's linear decoder (§3.1: "for each of the D linear decoders in
//! f ... each a linear least-squares problem").

use crate::sgd::SgdConfig;
use crate::submodel::Submodel;
use parmac_linalg::cholesky::solve_ridge;
use parmac_linalg::vector::dot;
use parmac_linalg::Mat;
use serde::{Deserialize, Serialize};

/// A linear model `wᵀx + b` trained with squared loss and L2 regularisation.
///
/// The objective is `λ/2 ‖w‖² + (1/2n) Σ (wᵀx + b − y)²`. The model can be
/// trained stochastically (the ParMAC W step) or exactly via the normal
/// equations (the serial MAC baseline, [`RidgeRegression::fit_exact`]).
///
/// # Examples
///
/// ```
/// use parmac_linalg::Mat;
/// use parmac_optim::{RidgeRegression, SgdConfig};
///
/// let x = Mat::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let y = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
/// let mut model = RidgeRegression::new(1, SgdConfig::new());
/// model.fit_exact(&x, &y);
/// let pred = model.predict_one(&[4.0]);
/// assert!((pred - 9.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    bias: f64,
    lambda: f64,
    updates: u64,
    config: SgdConfig,
}

impl RidgeRegression {
    /// Creates a zero-initialised model for `dim`-dimensional inputs.
    pub fn new(dim: usize, config: SgdConfig) -> Self {
        RidgeRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            lambda: config.lambda,
            updates: 0,
            config,
        }
    }

    /// The weight vector (excluding the bias).
    pub fn weight_vector(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Prediction for a single point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the input dimensionality.
    pub fn predict_one(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Fits the model exactly by solving the ridge normal equations on the
    /// bias-augmented inputs. This is the "exact W step" of serial MAC.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != y.len()`.
    pub fn fit_exact(&mut self, x: &Mat, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "fit_exact: target count mismatch");
        let xa = x.with_bias_column();
        let yb = Mat::from_vec(y.len(), 1, y.to_vec());
        // Small floor on the regulariser keeps the Gram matrix SPD even for
        // degenerate inputs (e.g. constant binary codes).
        let lambda = self.lambda.max(1e-10) * x.rows().max(1) as f64;
        let w = solve_ridge(&xa, &yb, lambda).expect("ridge normal equations are SPD");
        for (i, wi) in self.weights.iter_mut().enumerate() {
            *wi = w[(i, 0)];
        }
        self.bias = w[(x.cols(), 0)];
    }

    /// Runs `epochs` passes of minibatch SGD over `(x, y)`.
    pub fn fit_batch(&mut self, x: &Mat, y: &[f64], epochs: usize) {
        assert_eq!(x.rows(), y.len(), "fit_batch: target count mismatch");
        let bs = self.config.minibatch_size.max(1);
        for _ in 0..epochs {
            let mut start = 0;
            while start < x.rows() {
                let end = (start + bs).min(x.rows());
                let idx: Vec<usize> = (start..end).collect();
                let xb = x.select_rows(&idx);
                let step = self.config.schedule.step_size(self.updates);
                self.sgd_step(&xb, &y[start..end], step);
                start = end;
            }
        }
    }

    /// Mean squared error on `(x, y)`.
    pub fn mse(&self, x: &Mat, y: &[f64]) -> f64 {
        if y.is_empty() {
            return 0.0;
        }
        self.predict(x)
            .iter()
            .zip(y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64
    }
}

impl Submodel for RidgeRegression {
    fn dim(&self) -> usize {
        self.weights.len()
    }

    fn sgd_step(&mut self, x: &Mat, targets: &[f64], step: f64) {
        assert_eq!(x.rows(), targets.len(), "sgd_step: target count mismatch");
        assert_eq!(x.cols(), self.weights.len(), "sgd_step: dim mismatch");
        let n = x.rows().max(1) as f64;
        let mut grad_w = vec![0.0; self.weights.len()];
        let mut grad_b = 0.0;
        for (i, &y) in targets.iter().enumerate() {
            let row = x.row(i);
            let err = self.predict_one(row) - y;
            for (g, &xi) in grad_w.iter_mut().zip(row) {
                *g += err * xi / n;
            }
            grad_b += err / n;
        }
        for (w, g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= step * (self.lambda * *w + g);
        }
        self.bias -= step * grad_b;
        self.updates += 1;
    }

    fn objective(&self, x: &Mat, targets: &[f64]) -> f64 {
        assert_eq!(x.rows(), targets.len());
        let n = x.rows().max(1) as f64;
        let sq: f64 = targets
            .iter()
            .enumerate()
            .map(|(i, &y)| {
                let e = self.predict_one(x.row(i)) - y;
                e * e
            })
            .sum::<f64>()
            / (2.0 * n);
        sq + 0.5 * self.lambda * dot(&self.weights, &self.weights)
    }

    fn predict(&self, x: &Mat) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }

    fn weights(&self) -> Vec<f64> {
        let mut w = self.weights.clone();
        w.push(self.bias);
        w
    }

    fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(
            weights.len(),
            self.weights.len() + 1,
            "set_weights: length mismatch"
        );
        let (w, b) = weights.split_at(self.weights.len());
        self.weights.copy_from_slice(w);
        self.bias = b[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn linear_problem(n: usize, seed: u64) -> (Mat, Vec<f64>, Vec<f64>, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = Mat::random_normal(n, 3, &mut rng);
        let w = vec![2.0, -1.0, 0.5];
        let b = 0.7;
        let y: Vec<f64> = (0..n).map(|i| dot(x.row(i), &w) + b).collect();
        (x, y, w, b)
    }

    #[test]
    fn exact_fit_recovers_generating_model() {
        let (x, y, w, b) = linear_problem(200, 0);
        let mut model = RidgeRegression::new(3, SgdConfig::new().with_lambda(1e-8));
        model.fit_exact(&x, &y);
        for (wi, ti) in model.weight_vector().iter().zip(&w) {
            assert!((wi - ti).abs() < 1e-3, "weight {wi} vs {ti}");
        }
        assert!((model.bias() - b).abs() < 1e-3);
        assert!(model.mse(&x, &y) < 1e-6);
    }

    #[test]
    fn sgd_fit_approaches_exact_fit() {
        let (x, y, _, _) = linear_problem(300, 1);
        let mut exact = RidgeRegression::new(3, SgdConfig::new().with_lambda(1e-6));
        exact.fit_exact(&x, &y);
        let mut sgd = RidgeRegression::new(
            3,
            SgdConfig::new()
                .with_eta0(0.05)
                .with_lambda(1e-6)
                .with_minibatch_size(10),
        );
        sgd.fit_batch(&x, &y, 100);
        assert!(sgd.mse(&x, &y) < 10.0 * (exact.mse(&x, &y) + 1e-3));
    }

    #[test]
    fn sgd_step_reduces_objective() {
        let (x, y, _, _) = linear_problem(100, 2);
        let mut model = RidgeRegression::new(3, SgdConfig::new());
        let before = model.objective(&x, &y);
        for _ in 0..200 {
            model.sgd_step(&x, &y, 0.05);
        }
        assert!(model.objective(&x, &y) < before);
    }

    #[test]
    fn weights_round_trip() {
        let (x, y, _, _) = linear_problem(50, 3);
        let mut model = RidgeRegression::new(3, SgdConfig::new());
        model.fit_exact(&x, &y);
        let w = Submodel::weights(&model);
        let mut copy = RidgeRegression::new(3, SgdConfig::new());
        copy.set_weights(&w);
        assert_eq!(model.predict(&x), copy.predict(&x));
    }

    #[test]
    fn strong_regularisation_shrinks_weights() {
        let (x, y, _, _) = linear_problem(100, 4);
        let mut weak = RidgeRegression::new(3, SgdConfig::new().with_lambda(1e-8));
        let mut strong = RidgeRegression::new(3, SgdConfig::new().with_lambda(100.0));
        weak.fit_exact(&x, &y);
        strong.fit_exact(&x, &y);
        let norm = |m: &RidgeRegression| dot(m.weight_vector(), m.weight_vector());
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn mse_on_empty_is_zero() {
        let model = RidgeRegression::new(2, SgdConfig::new());
        assert_eq!(model.mse(&Mat::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn exact_fit_handles_constant_inputs() {
        // Degenerate design matrix (all-zero column) must not panic thanks to
        // the ridge floor.
        let x = Mat::from_rows(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]);
        let y = [1.0, 1.0, 1.0];
        let mut model = RidgeRegression::new(2, SgdConfig::new().with_lambda(0.0));
        model.fit_exact(&x, &y);
        assert!((model.predict_one(&[0.0, 1.0]) - 1.0).abs() < 0.2);
    }
}
