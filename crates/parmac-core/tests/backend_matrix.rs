//! Three-way backend equivalence matrix: the same training run on
//! [`SimBackend`], [`ThreadedBackend`] and [`PoolBackend`] must produce
//! **bitwise identical** trained weights and codes — not merely statistically
//! close models. This holds because each submodel's machine-visit sequence is
//! the same on every backend (seeded round-robin, then ring order), submodels
//! are mutually independent during a W step, and per-point Z solves are
//! independent with a collect-then-apply contract applied in topology order.
//!
//! The matrix covers the degenerate single-worker pool (CI runs it at pool
//! sizes 1, 2 and 8), a shuffled ring topology, an imbalanced proportional
//! partition, and the serial-MAC-shaped whole-dataset Z sweep against each
//! backend's distributed sweep.

use parmac_cluster::{ClusterBackend, CostModel, PoolBackend, SimBackend, ThreadedBackend};
use parmac_core::zstep::{self, ZStepProblem};
use parmac_core::{BaConfig, ParMacConfig, ParMacTrainer};
use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac_hash::{BinaryCodes, HashFunction};
use parmac_linalg::Mat;

/// The pool sizes the equivalence suite is pinned at: the single-worker
/// degenerate path, a small pool, and more workers than this container has
/// cores.
const POOL_WORKERS: [usize; 3] = [1, 2, 8];

fn dataset(seed: u64, n: usize) -> Mat {
    gaussian_mixture(&MixtureConfig::new(n, 10, 4).with_seed(seed)).features
}

fn quick_cfg(bits: usize, machines: usize) -> ParMacConfig {
    ParMacConfig::new(
        BaConfig::new(bits)
            .with_mu_schedule(0.02, 2.0, 4)
            .with_epochs(1)
            .with_seed(5)
            .with_sgd(parmac_optim::SgdConfig::new().with_eta0(0.1)),
        machines,
    )
}

/// Runs a full training and returns everything that must match bitwise.
fn run<B: ClusterBackend>(
    cfg: ParMacConfig,
    x: &Mat,
    backend: B,
    speeds: Option<Vec<f64>>,
) -> (Mat, Mat, BinaryCodes, f64) {
    let mut trainer = ParMacTrainer::new(cfg, x, backend);
    if let Some(speeds) = speeds {
        trainer = trainer.with_machine_speeds(speeds);
    }
    let report = trainer.run(x);
    (
        trainer.model().encoder().weights().clone(),
        trainer.model().decoder().weights().clone(),
        trainer.codes().clone(),
        report.mac.final_ba_error,
    )
}

fn assert_matrix_identical(cfg: ParMacConfig, x: &Mat, speeds: Option<Vec<f64>>, label: &str) {
    let sim = run(
        cfg,
        x,
        SimBackend::new(CostModel::distributed()),
        speeds.clone(),
    );
    let threaded = run(
        cfg,
        x,
        ThreadedBackend::new().with_cost_model(CostModel::distributed()),
        speeds.clone(),
    );
    assert_eq!(
        sim.0, threaded.0,
        "{label}: encoder weights sim vs threaded"
    );
    assert_eq!(
        sim.1, threaded.1,
        "{label}: decoder weights sim vs threaded"
    );
    assert_eq!(sim.2, threaded.2, "{label}: codes sim vs threaded");
    assert_eq!(sim.3, threaded.3, "{label}: E_BA sim vs threaded");
    for workers in POOL_WORKERS {
        let pool = run(
            cfg,
            x,
            PoolBackend::new()
                .with_workers(workers)
                .with_chunk_size(8)
                .with_cost_model(CostModel::distributed()),
            speeds.clone(),
        );
        assert_eq!(
            sim.0, pool.0,
            "{label}: encoder weights sim vs pool({workers})"
        );
        assert_eq!(
            sim.1, pool.1,
            "{label}: decoder weights sim vs pool({workers})"
        );
        assert_eq!(sim.2, pool.2, "{label}: codes sim vs pool({workers})");
        assert_eq!(sim.3, pool.3, "{label}: E_BA sim vs pool({workers})");
    }
}

#[test]
fn parmac_full_run_is_bitwise_identical_across_backends() {
    let x = dataset(21, 160);
    assert_matrix_identical(quick_cfg(6, 4), &x, None, "plain");
}

#[test]
fn matrix_holds_under_a_shuffled_topology() {
    // Cross-machine shuffling re-randomises the ring before every W step; the
    // trainer's seeded RNG makes the shuffle sequence identical across
    // backends, so the matrix must still agree bitwise.
    let x = dataset(22, 160);
    let cfg = quick_cfg(5, 4).with_cross_machine_shuffling(true);
    assert_matrix_identical(cfg, &x, None, "shuffled topology");
}

#[test]
fn matrix_holds_under_an_imbalanced_proportional_partition() {
    // Speeds 1:2:5 give shards of very different sizes — the regime where the
    // pool's chunk stealing beats one-thread-per-shard, and exactly where a
    // granularity bug would break bitwise equality.
    let x = dataset(23, 240);
    let cfg = quick_cfg(5, 3);
    assert_matrix_identical(cfg, &x, Some(vec![1.0, 2.0, 5.0]), "imbalanced");
}

#[test]
fn distributed_z_sweep_equals_the_serial_mac_sweep_on_every_backend() {
    // The serial MacTrainer solves its Z step through `zstep::solve_shard`
    // with the whole dataset as one shard. Every backend's distributed sweep
    // must produce exactly those codes: same kernels, same per-point
    // independence, different partitioning and scheduling only.
    let x = dataset(24, 150);
    let cfg = quick_cfg(6, 3);
    let mu = 0.05;

    fn one_iteration<B: ClusterBackend>(
        cfg: ParMacConfig,
        x: &Mat,
        mu: f64,
        backend: B,
    ) -> (Mat, BinaryCodes) {
        let mut t = ParMacTrainer::new(cfg, x, backend);
        t.w_step(x, 0);
        t.z_step(x, mu);
        (t.model().encoder().weights().clone(), t.codes().clone())
    }

    let mut results: Vec<(String, (Mat, BinaryCodes))> = vec![
        (
            "sim".into(),
            one_iteration(cfg, &x, mu, SimBackend::new(CostModel::distributed())),
        ),
        (
            "threaded".into(),
            one_iteration(cfg, &x, mu, ThreadedBackend::new()),
        ),
    ];
    for workers in POOL_WORKERS {
        results.push((
            format!("pool({workers})"),
            one_iteration(
                cfg,
                &x,
                mu,
                PoolBackend::new().with_workers(workers).with_chunk_size(16),
            ),
        ));
    }
    let (_, reference) = results[0].clone();
    for (name, result) in &results[1..] {
        assert_eq!(reference.0, result.0, "{name}: W step diverged");
        assert_eq!(reference.1, result.1, "{name}: Z step diverged");
    }

    // The MAC-shaped sweep: one shard covering the whole dataset, solved with
    // the same model state the backends reached after their (identical) W
    // step.
    let ref_codes = reference.1;
    let mut t = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
    t.w_step(&x, 0);
    let model = t.model().clone();
    let method = cfg.ba.resolved_z_method();
    let problem = ZStepProblem::new(model.decoder(), mu);
    let points: Vec<usize> = (0..x.rows()).collect();
    let hx = zstep::encoder_outputs(&x, &points, model.decoder().n_bits(), |row| {
        model.encoder().encode_one(row)
    });
    let mut serial_codes = t.codes().clone();
    zstep::solve_shard(
        method,
        &problem,
        &x,
        &points,
        &hx,
        cfg.ba.z_alternations,
        |n, z_new| serial_codes.set_code(n, z_new),
    );
    assert_eq!(
        ref_codes, serial_codes,
        "distributed Z sweep must equal the serial MAC whole-dataset sweep"
    );
}
