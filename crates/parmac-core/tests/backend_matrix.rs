//! Five-way backend equivalence matrix: the same training run on
//! [`SimBackend`], [`ThreadedBackend`], [`PoolBackend`], [`ServerBackend`]
//! and [`ProcessBackend`] (real OS processes over Unix-domain sockets) must
//! produce **bitwise identical** trained weights and codes — not merely
//! statistically close models. This holds because each submodel's
//! machine-visit sequence is the same on every backend (seeded round-robin,
//! then ring order), submodels are mutually independent during a W step, and
//! per-point Z solves are independent with a collect-then-apply contract
//! applied in topology order.
//!
//! The matrix covers the degenerate single-worker pool (CI runs it at pool
//! sizes 1, 2 and 8), a shuffled ring topology, an imbalanced proportional
//! partition, a mid-training machine add/remove (streaming §4.3), the
//! serial-MAC-shaped whole-dataset Z sweep against each backend's distributed
//! sweep, and the serving path: `ServerBackend` answers Hamming k-NN queries
//! during training, equal to a single-process `hamming_knn` over the
//! concatenated shards — including at replication factor 2 with a machine
//! actor killed between MAC iterations (training stays bitwise identical,
//! serving keeps full coverage through the surviving replicas). The process
//! backend additionally survives a worker **SIGKILL** between iterations
//! bitwise-equal to a simulator whose machine was disconnected at the same
//! point, and a kill *racing* a W step still completes within bounded
//! deadlines with the fault reported.

use parmac_cluster::process::{MachineDownReason, ProcessConfig};
use parmac_cluster::{
    ClusterBackend, CostModel, PoolBackend, ProcessBackend, ServerBackend, SimBackend,
    ThreadedBackend,
};
use parmac_core::zstep::{self, ZStepProblem};
use parmac_core::{BaConfig, ParMacConfig, ParMacTrainer};
use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac_hash::{BinaryCodes, HashFunction};
use parmac_linalg::Mat;
use parmac_retrieval::hamming_knn;

/// The pool sizes the equivalence suite is pinned at: the single-worker
/// degenerate path, a small pool, and more workers than this container has
/// cores.
const POOL_WORKERS: [usize; 3] = [1, 2, 8];

fn dataset(seed: u64, n: usize) -> Mat {
    gaussian_mixture(&MixtureConfig::new(n, 10, 4).with_seed(seed)).features
}

fn quick_cfg(bits: usize, machines: usize) -> ParMacConfig {
    ParMacConfig::new(
        BaConfig::new(bits)
            .with_mu_schedule(0.02, 2.0, 4)
            .with_epochs(1)
            .with_seed(5)
            .with_sgd(parmac_optim::SgdConfig::new().with_eta0(0.1)),
        machines,
    )
}

/// Runs a full training and returns everything that must match bitwise.
fn run<B: ClusterBackend>(
    cfg: ParMacConfig,
    x: &Mat,
    backend: B,
    speeds: Option<Vec<f64>>,
) -> (Mat, Mat, BinaryCodes, f64) {
    let mut trainer = ParMacTrainer::new(cfg, x, backend);
    if let Some(speeds) = speeds {
        trainer = trainer.with_machine_speeds(speeds);
    }
    let report = trainer.run(x);
    (
        trainer.model().encoder().weights().clone(),
        trainer.model().decoder().weights().clone(),
        trainer.codes().clone(),
        report.mac.final_ba_error,
    )
}

fn assert_matrix_identical(cfg: ParMacConfig, x: &Mat, speeds: Option<Vec<f64>>, label: &str) {
    let sim = run(
        cfg,
        x,
        SimBackend::new(CostModel::distributed()),
        speeds.clone(),
    );
    let threaded = run(
        cfg,
        x,
        ThreadedBackend::new().with_cost_model(CostModel::distributed()),
        speeds.clone(),
    );
    assert_eq!(
        sim.0, threaded.0,
        "{label}: encoder weights sim vs threaded"
    );
    assert_eq!(
        sim.1, threaded.1,
        "{label}: decoder weights sim vs threaded"
    );
    assert_eq!(sim.2, threaded.2, "{label}: codes sim vs threaded");
    assert_eq!(sim.3, threaded.3, "{label}: E_BA sim vs threaded");
    for workers in POOL_WORKERS {
        let pool = run(
            cfg,
            x,
            PoolBackend::new()
                .with_workers(workers)
                .with_chunk_size(8)
                .with_cost_model(CostModel::distributed()),
            speeds.clone(),
        );
        assert_eq!(
            sim.0, pool.0,
            "{label}: encoder weights sim vs pool({workers})"
        );
        assert_eq!(
            sim.1, pool.1,
            "{label}: decoder weights sim vs pool({workers})"
        );
        assert_eq!(sim.2, pool.2, "{label}: codes sim vs pool({workers})");
        assert_eq!(sim.3, pool.3, "{label}: E_BA sim vs pool({workers})");
    }
    let server = run(
        cfg,
        x,
        ServerBackend::new().with_cost_model(CostModel::distributed()),
        speeds.clone(),
    );
    assert_eq!(sim.0, server.0, "{label}: encoder weights sim vs server");
    assert_eq!(sim.1, server.1, "{label}: decoder weights sim vs server");
    assert_eq!(sim.2, server.2, "{label}: codes sim vs server");
    assert_eq!(sim.3, server.3, "{label}: E_BA sim vs server");
    let process = run(
        cfg,
        x,
        ProcessBackend::new().with_cost_model(CostModel::distributed()),
        speeds,
    );
    assert_eq!(sim.0, process.0, "{label}: encoder weights sim vs process");
    assert_eq!(sim.1, process.1, "{label}: decoder weights sim vs process");
    assert_eq!(sim.2, process.2, "{label}: codes sim vs process");
    assert_eq!(sim.3, process.3, "{label}: E_BA sim vs process");
}

#[test]
fn parmac_full_run_is_bitwise_identical_across_backends() {
    let x = dataset(21, 160);
    assert_matrix_identical(quick_cfg(6, 4), &x, None, "plain");
}

#[test]
fn matrix_holds_under_a_shuffled_topology() {
    // Cross-machine shuffling re-randomises the ring before every W step; the
    // trainer's seeded RNG makes the shuffle sequence identical across
    // backends, so the matrix must still agree bitwise.
    let x = dataset(22, 160);
    let cfg = quick_cfg(5, 4).with_cross_machine_shuffling(true);
    assert_matrix_identical(cfg, &x, None, "shuffled topology");
}

#[test]
fn matrix_holds_under_an_imbalanced_proportional_partition() {
    // Speeds 1:2:5 give shards of very different sizes — the regime where the
    // pool's chunk stealing beats one-thread-per-shard, and exactly where a
    // granularity bug would break bitwise equality.
    let x = dataset(23, 240);
    let cfg = quick_cfg(5, 3);
    assert_matrix_identical(cfg, &x, Some(vec![1.0, 2.0, 5.0]), "imbalanced");
}

#[test]
fn distributed_z_sweep_equals_the_serial_mac_sweep_on_every_backend() {
    // The serial MacTrainer solves its Z step through `zstep::solve_shard`
    // with the whole dataset as one shard. Every backend's distributed sweep
    // must produce exactly those codes: same kernels, same per-point
    // independence, different partitioning and scheduling only.
    let x = dataset(24, 150);
    let cfg = quick_cfg(6, 3);
    let mu = 0.05;

    fn one_iteration<B: ClusterBackend>(
        cfg: ParMacConfig,
        x: &Mat,
        mu: f64,
        backend: B,
    ) -> (Mat, BinaryCodes) {
        let mut t = ParMacTrainer::new(cfg, x, backend);
        t.w_step(x, 0);
        t.z_step(x, mu);
        (t.model().encoder().weights().clone(), t.codes().clone())
    }

    let mut results: Vec<(String, (Mat, BinaryCodes))> = vec![
        (
            "sim".into(),
            one_iteration(cfg, &x, mu, SimBackend::new(CostModel::distributed())),
        ),
        (
            "threaded".into(),
            one_iteration(cfg, &x, mu, ThreadedBackend::new()),
        ),
    ];
    for workers in POOL_WORKERS {
        results.push((
            format!("pool({workers})"),
            one_iteration(
                cfg,
                &x,
                mu,
                PoolBackend::new().with_workers(workers).with_chunk_size(16),
            ),
        ));
    }
    results.push((
        "server".into(),
        one_iteration(cfg, &x, mu, ServerBackend::new()),
    ));
    let (_, reference) = results[0].clone();
    for (name, result) in &results[1..] {
        assert_eq!(reference.0, result.0, "{name}: W step diverged");
        assert_eq!(reference.1, result.1, "{name}: Z step diverged");
    }

    // The MAC-shaped sweep: one shard covering the whole dataset, solved with
    // the same model state the backends reached after their (identical) W
    // step.
    let ref_codes = reference.1;
    let mut t = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
    t.w_step(&x, 0);
    let model = t.model().clone();
    let method = cfg.ba.resolved_z_method();
    let problem = ZStepProblem::new(model.decoder(), mu);
    let points: Vec<usize> = (0..x.rows()).collect();
    let hx = zstep::encoder_outputs(&x, &points, model.decoder().n_bits(), |row| {
        model.encoder().encode_one(row)
    });
    let mut serial_codes = t.codes().clone();
    zstep::solve_shard(
        method,
        &problem,
        &x,
        &points,
        &hx,
        cfg.ba.z_alternations,
        |n, z_new| serial_codes.set_code(n, z_new),
    );
    assert_eq!(
        ref_codes, serial_codes,
        "distributed Z sweep must equal the serial MAC whole-dataset sweep"
    );
}

/// One MAC iteration, then §4.3 streaming — a new machine joins with freshly
/// collected data and an old machine leaves the ring — then another
/// iteration on the final topology. Returns everything that must match.
fn streaming_schedule<B: ClusterBackend>(
    cfg: ParMacConfig,
    x_initial: &Mat,
    x_extended: &Mat,
    backend: B,
) -> (Mat, Mat, BinaryCodes) {
    let mut t = ParMacTrainer::new(cfg, x_initial, backend);
    t.w_step(x_initial, 0);
    t.z_step(x_initial, 0.05);
    let new_id = t.add_streaming_machine(x_extended, 1);
    assert_eq!(new_id, 4);
    t.remove_machine(0);
    t.w_step(x_extended, 1);
    t.z_step(x_extended, 0.1);
    (
        t.model().encoder().weights().clone(),
        t.model().decoder().weights().clone(),
        t.codes().clone(),
    )
}

#[test]
fn matrix_holds_across_a_mid_training_machine_add_and_remove() {
    // Streaming between epochs must not break the bitwise equivalence: every
    // backend sees the same machine join (with identically initialised codes)
    // and the same machine leave, so the second iteration runs on the same
    // final topology everywhere.
    let x_initial = dataset(25, 160);
    let extra = dataset(26, 40);
    let x_extended = x_initial.vstack(&extra).unwrap();
    let cfg = quick_cfg(5, 4);
    let reference = streaming_schedule(
        cfg,
        &x_initial,
        &x_extended,
        SimBackend::new(CostModel::distributed()),
    );
    let others: Vec<(String, _)> = vec![
        (
            "threaded".into(),
            streaming_schedule(cfg, &x_initial, &x_extended, ThreadedBackend::new()),
        ),
        (
            "pool".into(),
            streaming_schedule(
                cfg,
                &x_initial,
                &x_extended,
                PoolBackend::new().with_workers(2).with_chunk_size(8),
            ),
        ),
        (
            "server".into(),
            streaming_schedule(cfg, &x_initial, &x_extended, ServerBackend::new()),
        ),
        (
            "process".into(),
            streaming_schedule(cfg, &x_initial, &x_extended, ProcessBackend::new()),
        ),
    ];
    for (name, result) in &others {
        assert_eq!(reference.0, result.0, "{name}: encoder weights");
        assert_eq!(reference.1, result.1, "{name}: decoder weights");
        assert_eq!(reference.2, result.2, "{name}: codes");
    }
}

#[test]
fn server_streaming_between_epochs_matches_a_fresh_sim_run_on_the_final_topology() {
    // The satellite regression: add and remove a machine between epochs on
    // ServerBackend and compare against a *fresh* SimBackend trainer driven
    // through the identical schedule — the end state (final topology, model,
    // codes) must coincide bitwise.
    let x_initial = dataset(27, 160);
    let extra = dataset(28, 40);
    let x_extended = x_initial.vstack(&extra).unwrap();
    let cfg = quick_cfg(6, 4);
    let server = streaming_schedule(cfg, &x_initial, &x_extended, ServerBackend::new());
    let sim = streaming_schedule(
        cfg,
        &x_initial,
        &x_extended,
        SimBackend::new(CostModel::distributed()),
    );
    assert_eq!(sim, server, "server streaming end-state diverged from sim");
}

#[test]
fn server_backend_serves_knn_equal_to_single_process_search() {
    // The train-and-serve acceptance: mid-training (after each MAC
    // iteration), the ServerBackend's QueryRouter must answer Hamming k-NN
    // exactly like a single-process hamming_knn over the concatenated shards
    // — which partition the whole dataset, i.e. the trainer's codes. All
    // three entry points (per-call fan-out, Arc-shared fan-out, and the
    // batched admission queue) must agree with it bitwise.
    let x = dataset(29, 180);
    let cfg = quick_cfg(6, 3);
    let backend = ServerBackend::new();
    let router = backend.query_router();
    let mut trainer = ParMacTrainer::new(cfg, &x, backend);
    let queries = std::sync::Arc::new(trainer.model().encode(&x.select_rows(&[3, 50, 99])));
    for (iteration, mu) in [(0usize, 0.05f64), (1, 0.1)] {
        trainer.w_step(&x, iteration);
        trainer.z_step(&x, mu);
        for k in [1usize, 10, 180] {
            let expected = hamming_knn(trainer.codes(), &queries, k);
            assert_eq!(
                router.knn(&queries, k).expect_full(),
                expected,
                "knn: iteration {iteration}, k={k}"
            );
            assert_eq!(
                router.knn_shared(&queries, k).expect_full(),
                expected,
                "knn_shared: iteration {iteration}, k={k}"
            );
            assert_eq!(
                router
                    .knn_admitted(std::sync::Arc::clone(&queries), k)
                    .expect("uncontended admission queue accepts")
                    .expect_full(),
                expected,
                "knn_admitted: iteration {iteration}, k={k}"
            );
            // Budgeted probing with a budget covering every possible bucket
            // (2^16 is the prefix-width ceiling) is exact mode, so the
            // indexed multi-probe serving path is pinned to the same
            // single-process search as the exact entry points.
            assert_eq!(
                router.knn_budgeted(&queries, k, 1 << 16).expect_full(),
                expected,
                "knn_budgeted: iteration {iteration}, k={k}"
            );
            assert_eq!(
                router
                    .knn_admitted_budgeted(std::sync::Arc::clone(&queries), k, 1 << 16)
                    .expect("uncontended admission queue accepts")
                    .expect_full(),
                expected,
                "knn_admitted_budgeted: iteration {iteration}, k={k}"
            );
        }
    }
    let stats = router.serving_stats();
    assert_eq!(stats.submitted, stats.answered + stats.shed);
    assert_eq!(stats.shed, 0, "uncontended queue never sheds");
}

#[test]
fn batched_serving_path_is_exact_after_a_machine_fault() {
    // §4.3 fault/streaming: a machine leaves the ring mid-training. Serving
    // machines keep their shard when they leave (the fleet still covers
    // every point), so the batched admission path must keep answering
    // exactly like the single-process search over the trainer's codes.
    let x_initial = dataset(31, 160);
    let extra = dataset(32, 40);
    let x_extended = x_initial.vstack(&extra).unwrap();
    let cfg = quick_cfg(5, 4);
    let backend = ServerBackend::new();
    let router = backend.query_router();
    let mut t = ParMacTrainer::new(cfg, &x_initial, backend);
    t.w_step(&x_initial, 0);
    t.z_step(&x_initial, 0.05);
    t.add_streaming_machine(&x_extended, 1);
    t.remove_machine(0); // the "fault": machine 0 is routed around from now on
    t.w_step(&x_extended, 1);
    t.z_step(&x_extended, 0.1);
    let queries = std::sync::Arc::new(t.model().encode(&x_extended.select_rows(&[0, 42, 170])));
    for k in [1usize, 10, 64] {
        let expected = hamming_knn(t.codes(), &queries, k);
        assert_eq!(
            router
                .knn_admitted(std::sync::Arc::clone(&queries), k)
                .expect("admission queue accepts")
                .expect_full(),
            expected,
            "admitted after fault, k={k}"
        );
        assert_eq!(
            router.knn_shared(&queries, k).expect_full(),
            expected,
            "shared fan-out after fault, k={k}"
        );
        // The surviving machines' prefix indexes (built at load, refreshed
        // by every ApplyUpdates since) must answer exactly under a
        // saturating probe budget too.
        assert_eq!(
            router.knn_budgeted(&queries, k, 1 << 16).expect_full(),
            expected,
            "budgeted after fault, k={k}"
        );
    }
}

#[test]
fn replicated_server_training_survives_a_mid_run_replica_kill_bitwise() {
    // The replication satellite: train on a ServerBackend at R = 2, kill one
    // machine actor between the two MAC iterations, and finish the run. The
    // trained weights and codes must stay bitwise identical to SimBackend
    // (the serving fleet is a mirror — losing a replica must never touch the
    // training path), and after the kill the router must still answer every
    // k-NN query with full coverage, equal to the single-process search.
    let x = dataset(33, 160);
    let cfg = quick_cfg(5, 4);

    fn two_iterations<B: ClusterBackend>(
        cfg: ParMacConfig,
        x: &Mat,
        backend: B,
        mid: impl FnOnce(),
    ) -> (Mat, Mat, BinaryCodes) {
        let mut t = ParMacTrainer::new(cfg, x, backend);
        t.w_step(x, 0);
        t.z_step(x, 0.05);
        mid();
        t.w_step(x, 1);
        t.z_step(x, 0.1);
        (
            t.model().encoder().weights().clone(),
            t.model().decoder().weights().clone(),
            t.codes().clone(),
        )
    }

    let sim = two_iterations(cfg, &x, SimBackend::new(CostModel::distributed()), || {});

    let backend = ServerBackend::new().with_replication(2);
    let router = backend.query_router();
    let chaos = backend.clone();
    let mut t = ParMacTrainer::new(cfg, &x, backend);
    t.w_step(&x, 0);
    t.z_step(&x, 0.05);
    chaos.kill_machine(2);
    t.w_step(&x, 1);
    t.z_step(&x, 0.1);
    assert_eq!(
        sim.0,
        t.model().encoder().weights().clone(),
        "encoder weights diverged after the kill"
    );
    assert_eq!(
        sim.1,
        t.model().decoder().weights().clone(),
        "decoder weights diverged after the kill"
    );
    assert_eq!(sim.2, t.codes().clone(), "codes diverged after the kill");

    // Serving after the kill: every shard still has a live replica at R = 2,
    // so coverage is full and answers — including codes refreshed by the
    // post-kill Z step — equal single-process hamming_knn over the trainer's
    // final codes.
    let queries = std::sync::Arc::new(t.model().encode(&x.select_rows(&[3, 50, 99])));
    for k in [1usize, 10, 64] {
        let expected = hamming_knn(t.codes(), &queries, k);
        let response = router.knn_shared(&queries, k);
        assert!(
            response.coverage.is_full(),
            "R=2 must survive one kill with full coverage: {:?}",
            response.coverage
        );
        assert_eq!(response.answers, expected, "after kill, k={k}");
    }
    assert_eq!(router.fleet_status().dead_machines, 1);
}

#[test]
fn server_backend_answers_queries_while_training_runs() {
    // Liveness of the serving path *during* training: one thread hammers the
    // direct fan-out and two more hammer the batched admission queue while
    // the trainer runs; every answer must be well-formed (k hits, valid
    // indices), every admitted submission must be accounted for
    // (answered + shed == submitted), and once training finishes every entry
    // point agrees with the single-process search over the final codes.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let x = dataset(30, 150);
    let cfg = quick_cfg(5, 3);
    let backend = ServerBackend::new();
    let router = backend.query_router();
    let mut trainer = ParMacTrainer::new(cfg, &x, backend);
    let queries = Arc::new(trainer.model().encode(&x.select_rows(&[0, 42])));
    let n_points = x.rows();
    let done = AtomicBool::new(false);
    let (queries_served, admitted_ok, admitted_shed) = std::thread::scope(|scope| {
        let prober = scope.spawn(|| {
            let mut served = 0usize;
            while !done.load(Ordering::Acquire) {
                let answers = router.knn(&queries, 5).expect_full();
                assert_eq!(answers.len(), 2);
                for hits in &answers {
                    assert_eq!(hits.len(), 5, "mid-training answer must have k hits");
                    assert!(hits.iter().all(|&i| i < n_points));
                }
                served += 1;
            }
            served
        });
        let admitters: Vec<_> = (0..2)
            .map(|_| {
                let router = router.clone();
                let queries = Arc::clone(&queries);
                let done = &done;
                scope.spawn(move || {
                    let (mut ok, mut shed) = (0u64, 0u64);
                    while !done.load(Ordering::Acquire) {
                        match router.knn_admitted(Arc::clone(&queries), 5) {
                            Ok(response) => {
                                let answers = response.expect_full();
                                assert_eq!(answers.len(), 2);
                                for hits in &answers {
                                    assert_eq!(hits.len(), 5);
                                    assert!(hits.iter().all(|&i| i < n_points));
                                }
                                ok += 1;
                            }
                            Err(_) => shed += 1,
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        trainer.run(&x);
        done.store(true, Ordering::Release);
        let served = prober.join().expect("query thread panicked");
        let (mut ok, mut shed) = (0u64, 0u64);
        for admitter in admitters {
            let (a, s) = admitter.join().expect("admitted-query thread panicked");
            ok += a;
            shed += s;
        }
        (served, ok, shed)
    });
    assert!(queries_served > 0, "no query was served during training");
    assert!(
        admitted_ok > 0,
        "no admitted query was answered during training"
    );
    let stats = router.serving_stats();
    assert_eq!(
        stats.submitted,
        stats.answered + stats.shed,
        "every admitted query accounted for: {stats:?}"
    );
    assert_eq!(stats.answered, admitted_ok);
    assert_eq!(stats.shed, admitted_shed);
    let expected = hamming_knn(trainer.codes(), &queries, 10);
    assert_eq!(
        router.knn(&queries, 10).expect_full(),
        expected,
        "post-training serving state must match the trainer's codes"
    );
    assert_eq!(
        router
            .knn_admitted(Arc::clone(&queries), 10)
            .expect("quiesced admission queue accepts")
            .expect_full(),
        expected,
        "post-training admitted path must match the trainer's codes"
    );
}

#[test]
fn process_training_survives_a_mid_run_worker_sigkill_bitwise() {
    // The cross-process robustness acceptance: train on ProcessBackend, kill
    // one worker process (SIGKILL, no shutdown handshake) between the two MAC
    // iterations, and finish the run. The end state must be bitwise identical
    // to a SimBackend trainer whose machine was disconnected (§4.3
    // `remove_machine`) at the same point: a dead worker's shard is simply no
    // longer visited, everything else trains on.
    let x = dataset(34, 160);
    let cfg = quick_cfg(5, 4);
    let victim = 2usize;

    fn two_iterations<B: ClusterBackend>(
        cfg: ParMacConfig,
        x: &Mat,
        backend: B,
        mid: impl FnOnce(&mut ParMacTrainer<B>),
    ) -> (Mat, Mat, BinaryCodes) {
        let mut t = ParMacTrainer::new(cfg, x, backend);
        t.w_step(x, 0);
        t.z_step(x, 0.05);
        mid(&mut t);
        t.w_step(x, 1);
        t.z_step(x, 0.1);
        (
            t.model().encoder().weights().clone(),
            t.model().decoder().weights().clone(),
            t.codes().clone(),
        )
    }

    let sim = two_iterations(cfg, &x, SimBackend::new(CostModel::distributed()), |t| {
        t.remove_machine(victim)
    });

    let backend = ProcessBackend::new();
    let chaos = backend.clone();
    let process = two_iterations(cfg, &x, backend, |_| {
        assert!(chaos.kill_process(victim), "victim worker was not live");
    });
    assert_eq!(process.0, sim.0, "encoder weights diverged after SIGKILL");
    assert_eq!(process.1, sim.1, "decoder weights diverged after SIGKILL");
    assert_eq!(process.2, sim.2, "codes diverged after SIGKILL");

    let downs = chaos.down_events();
    assert_eq!(downs.len(), 1, "exactly one fault expected: {downs:?}");
    assert_eq!(downs[0].machine, victim);
    assert_eq!(downs[0].reason, MachineDownReason::Killed);
    assert_eq!(chaos.dead_machines(), vec![victim]);
}

#[test]
fn process_kill_racing_a_w_step_completes_within_bounded_deadlines() {
    // Chaos liveness: a SIGKILL fired from another thread *races* the second
    // W step — it may land before the round opens, mid-epoch with envelopes
    // in flight, or after the step drained. In every interleaving the run
    // must terminate well inside the step deadline with the fault reported;
    // the no-hang guarantee is the assertion, not a particular final state.
    use std::time::{Duration, Instant};
    let x = dataset(35, 160);
    let cfg = quick_cfg(5, 4);
    let backend = ProcessBackend::new().with_config(ProcessConfig {
        step_timeout: Duration::from_secs(30),
        io_timeout: Duration::from_millis(500),
        ..ProcessConfig::default()
    });
    let chaos = backend.clone();
    let start = Instant::now();
    let mut t = ParMacTrainer::new(cfg, &x, backend);
    t.w_step(&x, 0);
    t.z_step(&x, 0.05);
    let killer = std::thread::spawn(move || chaos.kill_process(1));
    t.w_step(&x, 1);
    t.z_step(&x, 0.1);
    let killed = killer.join().expect("chaos thread panicked");
    assert!(killed, "machine 1 was already dead before the chaos kill");
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "chaos run exceeded the liveness bound"
    );

    let t_backend_downs = t.backend().down_events();
    assert_eq!(
        t_backend_downs,
        vec![parmac_cluster::MachineDown {
            machine: 1,
            reason: MachineDownReason::Killed
        }],
        "the racing SIGKILL must surface as exactly one structured fault"
    );
    assert_eq!(t.backend().dead_machines(), vec![1]);
    // The trainer end state is well-formed: codes for every point, finite
    // weights (the exact bits depend on where the kill landed).
    assert_eq!(t.codes().len(), x.rows());
    assert!(t
        .model()
        .encoder()
        .weights()
        .as_slice()
        .iter()
        .chain(t.model().decoder().weights().as_slice())
        .all(|w| w.is_finite()));
}
