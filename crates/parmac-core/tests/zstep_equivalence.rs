//! Equivalence tests pinning the allocation-free, incrementally-updated
//! Z-step kernels to the semantics of the PR-1 reference implementations
//! (kept verbatim in `parmac_core::zstep::reference` so the benches measure
//! exactly the kernels these tests pin).
//!
//! Three properties are checked bitwise:
//!
//! * Gray-code exact enumeration ≡ naive ascending enumeration (full decode
//!   per candidate) across random `(L ≤ 12, D, µ)` instances;
//! * the workspace-based alternating sweep ≡ the PR-1 allocating kernel on
//!   seeded random instances;
//! * the batched multi-RHS relaxed initialisation ≡ the per-point relaxed
//!   solve over random shards.

use parmac_core::zstep::{
    reference, solve_alternating, solve_exact, solve_relaxed_batch, ZStepProblem, ZStepWorkspace,
};
use parmac_hash::LinearDecoder;
use parmac_linalg::Mat;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_instance(l: usize, d: usize, seed: u64) -> (LinearDecoder, Vec<f64>, Vec<f64>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let decoder = LinearDecoder::new(
        Mat::random_normal(d, l, &mut rng),
        (0..d).map(|_| rng.gen_range(-0.5..0.5)).collect(),
    );
    let x: Vec<f64> = (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let hx: Vec<f64> = (0..l)
        .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
        .collect();
    (decoder, x, hx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gray_code_exact_is_bit_identical_to_naive_enumeration(
        l in 1usize..=12,
        d in 1usize..=16,
        seed in 0u64..100_000,
        mu in 0.0f64..3.0,
    ) {
        let (decoder, x, hx) = random_instance(l, d, seed);
        let problem = ZStepProblem::new(&decoder, mu);
        let mut workspace = ZStepWorkspace::new(&problem);
        let gray = workspace.solve_exact(&problem, &x, &hx).to_vec();
        let naive = reference::solve_exact(&problem, &x, &hx);
        prop_assert_eq!(&gray, &naive);
        // The free function goes through the same workspace kernel.
        prop_assert_eq!(&solve_exact(&problem, &x, &hx), &naive);
    }

    #[test]
    fn workspace_alternating_is_bit_identical_to_pr1_kernel(
        l in 2usize..=16,
        d in 1usize..=24,
        seed in 0u64..100_000,
        mu in 0.0f64..3.0,
        rounds in 1usize..6,
    ) {
        let (decoder, x, hx) = random_instance(l, d, seed);
        let problem = ZStepProblem::new(&decoder, mu);
        let mut workspace = ZStepWorkspace::new(&problem);
        let ours = workspace.solve_alternating(&problem, &x, &hx, rounds).to_vec();
        let pr1 = reference::solve_alternating(&problem, &x, &hx, rounds);
        prop_assert_eq!(&ours, &pr1);
        prop_assert_eq!(&solve_alternating(&problem, &x, &hx, rounds), &pr1);
    }

    #[test]
    fn batched_relaxed_is_bit_identical_to_per_point(
        l in 1usize..=12,
        d in 1usize..=16,
        n in 1usize..12,
        seed in 0u64..100_000,
        mu in 0.0f64..3.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let decoder = LinearDecoder::new(
            Mat::random_normal(d, l, &mut rng),
            (0..d).map(|_| rng.gen_range(-0.5..0.5)).collect(),
        );
        let problem = ZStepProblem::new(&decoder, mu);
        let x = Mat::random_normal(n + 3, d, &mut rng);
        // A shard of distinct points in scrambled order.
        let mut points: Vec<usize> = (0..n).collect();
        for i in (1..points.len()).rev() {
            points.swap(i, rng.gen_range(0..=i));
        }
        let mut hx = Mat::zeros(points.len(), l);
        for row in 0..points.len() {
            for bit in 0..l {
                if rng.gen_bool(0.5) {
                    hx[(row, bit)] = 1.0;
                }
            }
        }
        let batch = solve_relaxed_batch(&problem, &x, &points, &hx);
        let mut workspace = ZStepWorkspace::new(&problem);
        for (row, &point) in points.iter().enumerate() {
            let single = workspace.solve_relaxed(&problem, x.row(point), hx.row(row)).to_vec();
            prop_assert_eq!(batch.row(row), &single[..]);
            // ... and the per-point path matches the PR-1 relaxed solve.
            prop_assert_eq!(
                batch.row(row),
                &reference::solve_relaxed(&problem, x.row(point), hx.row(row))[..]
            );
        }
    }

    #[test]
    fn workspace_reuse_across_a_shard_matches_fresh_workspaces(
        l in 2usize..=10,
        d in 1usize..=12,
        seed in 0u64..100_000,
    ) {
        // Solving a sequence of points through one shared workspace must give
        // the same answers as fresh per-point workspaces: no state leakage.
        let (decoder, _, _) = random_instance(l, d, seed);
        let problem = ZStepProblem::new(&decoder, 0.3);
        let mut shared = ZStepWorkspace::new(&problem);
        for point_seed in 0..4u64 {
            let (_, x, hx) = random_instance(l, d, seed ^ (0xabcd + point_seed));
            let mut fresh = ZStepWorkspace::new(&problem);
            prop_assert_eq!(
                shared.solve_exact(&problem, &x, &hx).to_vec(),
                fresh.solve_exact(&problem, &x, &hx).to_vec()
            );
            prop_assert_eq!(
                shared.solve_alternating(&problem, &x, &hx, 4).to_vec(),
                fresh.solve_alternating(&problem, &x, &hx, 4).to_vec()
            );
        }
    }
}
