//! The general K-layer MAC of §3.2: training a deep (sigmoid) net by
//! alternating per-unit logistic regressions (W step) with per-point
//! coordinate updates (Z step).
//!
//! The model is `f(x) = W_out·σ(W_K·σ(… σ(W_1 x + b_1) …) + b_K) + b_out` and
//! the quadratic-penalty objective of eq. (6) is
//!
//! ```text
//! E_Q(W, Z; µ) = ½ Σ_n ‖y_n − f_out(z_{K,n})‖² + µ/2 Σ_n Σ_k ‖z_{k,n} − σ(W_k z_{k−1,n} + b_k)‖²
//! ```
//!
//! The W step trains every hidden unit as an independent (soft-target)
//! logistic regression and the output layer as a ridge regression; the Z step
//! runs a few steps of gradient descent on each point's coordinates. This
//! module demonstrates that MAC — and therefore ParMAC, whose W-step
//! parallelism is over exactly these per-unit submodels — is not specific to
//! binary autoencoders.

use parmac_linalg::cholesky::solve_ridge;
use parmac_linalg::Mat;
use parmac_optim::logistic::sigmoid;
use parmac_optim::{LogisticRegression, SgdConfig, Submodel};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a K-layer MAC run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedMacConfig {
    /// Layer widths, input first and output last, e.g. `[4, 8, 8, 2]` for two
    /// hidden layers of 8 sigmoid units.
    pub layer_sizes: Vec<usize>,
    /// Initial penalty parameter µ₀.
    pub mu0: f64,
    /// Multiplicative µ growth factor.
    pub mu_factor: f64,
    /// Number of MAC iterations (µ values).
    pub iterations: usize,
    /// SGD configuration for the per-unit logistic regressions.
    pub sgd: SgdConfig,
    /// Epochs of SGD per W step for the hidden units.
    pub w_epochs: usize,
    /// Gradient-descent steps per point in the Z step.
    pub z_steps: usize,
    /// Gradient-descent step size in the Z step.
    pub z_step_size: f64,
    /// RNG seed for the initial weights.
    pub seed: u64,
}

impl NestedMacConfig {
    /// A default configuration for the given layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes (input and output) are given or
    /// any size is zero.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "need at least input and output sizes"
        );
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        NestedMacConfig {
            layer_sizes,
            mu0: 0.1,
            mu_factor: 2.0,
            iterations: 8,
            sgd: SgdConfig::new().with_eta0(0.5).with_lambda(1e-5),
            w_epochs: 10,
            z_steps: 10,
            z_step_size: 0.3,
            seed: 0,
        }
    }

    /// Number of hidden layers `K`.
    pub fn n_hidden_layers(&self) -> usize {
        self.layer_sizes.len() - 2
    }

    /// Total number of independent W-step submodels (hidden units plus output
    /// units) — the `M` of the ParMAC speedup analysis for this model.
    pub fn n_submodels(&self) -> usize {
        self.layer_sizes[1..].iter().sum()
    }
}

/// A sigmoid multilayer perceptron with a linear output layer, stored as
/// per-layer weight matrices (`out × in`) and bias vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SigmoidMlp {
    weights: Vec<Mat>,
    biases: Vec<Vec<f64>>,
}

impl SigmoidMlp {
    /// Random small-weight initialisation for the given layer sizes.
    pub fn random(layer_sizes: &[usize], rng: &mut SmallRng) -> Self {
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in layer_sizes.windows(2) {
            let scale = 1.0 / (w[0] as f64).sqrt();
            weights.push(Mat::random_normal(w[1], w[0], rng).scale(scale));
            biases.push(vec![0.0; w[1]]);
        }
        SigmoidMlp { weights, biases }
    }

    /// Number of weight layers (hidden layers + output layer).
    pub fn n_layers(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass for one input; hidden layers use the sigmoid, the output
    /// layer is linear. Returns the activations of every layer (hidden layers
    /// first, output last).
    pub fn forward_all(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut activations = Vec::with_capacity(self.n_layers());
        let mut input = x.to_vec();
        for (k, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let pre: Vec<f64> = (0..w.rows())
                .map(|u| {
                    w.row(u)
                        .iter()
                        .zip(&input)
                        .map(|(wi, xi)| wi * xi)
                        .sum::<f64>()
                        + b[u]
                })
                .collect();
            let out: Vec<f64> = if k + 1 == self.n_layers() {
                pre
            } else {
                pre.iter().map(|&t| sigmoid(t)).collect()
            };
            activations.push(out.clone());
            input = out;
        }
        activations
    }

    /// Forward pass returning only the output.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.forward_all(x).pop().expect("at least one layer")
    }

    /// Nested squared error `½ Σ_n ‖y_n − f(x_n)‖²` (eq. 4).
    pub fn nested_error(&self, x: &Mat, y: &Mat) -> f64 {
        assert_eq!(x.rows(), y.rows(), "input/target count mismatch");
        let mut err = 0.0;
        for n in 0..x.rows() {
            let out = self.predict(x.row(n));
            err += out
                .iter()
                .zip(y.row(n))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        }
        0.5 * err
    }

    /// The weights of layer `k` (0-based, output layer last).
    pub fn layer_weights(&self, k: usize) -> &Mat {
        &self.weights[k]
    }
}

/// Report of a K-layer MAC run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NestedMacReport {
    /// Nested error of the random initial network.
    pub initial_error: f64,
    /// Nested error after training.
    pub final_error: f64,
    /// Nested error after every MAC iteration.
    pub error_per_iteration: Vec<f64>,
}

/// The K-layer MAC trainer.
#[derive(Debug, Clone)]
pub struct NestedMac {
    config: NestedMacConfig,
    model: SigmoidMlp,
    /// `z[k]` is the `N × layer_sizes[k+1]` matrix of auxiliary coordinates
    /// for hidden layer `k`.
    z: Vec<Mat>,
}

impl NestedMac {
    /// Creates a trainer with random weights and auxiliary coordinates
    /// initialised by a forward pass (the usual MAC initialisation).
    ///
    /// # Panics
    ///
    /// Panics if the data dimensions do not match the configured layer sizes.
    pub fn new(config: NestedMacConfig, x: &Mat, y: &Mat) -> Self {
        assert_eq!(x.cols(), config.layer_sizes[0], "input width mismatch");
        assert_eq!(
            y.cols(),
            *config.layer_sizes.last().unwrap(),
            "output width mismatch"
        );
        assert_eq!(x.rows(), y.rows(), "input/target count mismatch");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let model = SigmoidMlp::random(&config.layer_sizes, &mut rng);
        let n_hidden = config.n_hidden_layers();
        let mut z: Vec<Mat> = (0..n_hidden)
            .map(|k| Mat::zeros(x.rows(), config.layer_sizes[k + 1]))
            .collect();
        for n in 0..x.rows() {
            let acts = model.forward_all(x.row(n));
            for (k, zk) in z.iter_mut().enumerate() {
                zk.set_row(n, &acts[k]);
            }
        }
        NestedMac { config, model, z }
    }

    /// The current network.
    pub fn model(&self) -> &SigmoidMlp {
        &self.model
    }

    /// The quadratic-penalty objective `E_Q(W, Z; µ)` of eq. (6).
    pub fn quadratic_penalty(&self, x: &Mat, y: &Mat, mu: f64) -> f64 {
        let k_hidden = self.config.n_hidden_layers();
        let mut total = 0.0;
        for n in 0..x.rows() {
            // Output term.
            let z_last: Vec<f64> = if k_hidden == 0 {
                x.row(n).to_vec()
            } else {
                self.z[k_hidden - 1].row(n).to_vec()
            };
            let out = self.layer_forward(k_hidden, &z_last, true);
            total += 0.5
                * out
                    .iter()
                    .zip(y.row(n))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
            // Constraint terms.
            for k in 0..k_hidden {
                let input: Vec<f64> = if k == 0 {
                    x.row(n).to_vec()
                } else {
                    self.z[k - 1].row(n).to_vec()
                };
                let pred = self.layer_forward(k, &input, false);
                total += 0.5
                    * mu
                    * pred
                        .iter()
                        .zip(self.z[k].row(n))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>();
            }
        }
        total
    }

    /// Runs the full MAC schedule and returns the error trace.
    pub fn run(&mut self, x: &Mat, y: &Mat) -> NestedMacReport {
        let initial_error = self.model.nested_error(x, y);
        let mut error_per_iteration = Vec::with_capacity(self.config.iterations);
        let mut mu = self.config.mu0;
        for _ in 0..self.config.iterations {
            self.w_step(x, y);
            self.z_step(x, y, mu);
            error_per_iteration.push(self.model.nested_error(x, y));
            mu *= self.config.mu_factor;
        }
        NestedMacReport {
            initial_error,
            final_error: self.model.nested_error(x, y),
            error_per_iteration,
        }
    }

    /// One W step: every hidden unit is trained as an independent logistic
    /// regression from the layer-below coordinates to its own coordinate, and
    /// the output layer is fitted by ridge regression.
    pub fn w_step(&mut self, x: &Mat, y: &Mat) {
        let k_hidden = self.config.n_hidden_layers();
        for k in 0..k_hidden {
            let input = if k == 0 {
                x.clone()
            } else {
                self.z[k - 1].clone()
            };
            let width = self.config.layer_sizes[k + 1];
            for unit in 0..width {
                let targets: Vec<f64> = self.z[k].col(unit);
                let mut lr = LogisticRegression::new(input.cols(), self.config.sgd);
                let mut w = self.model.weights[k].row(unit).to_vec();
                w.push(self.model.biases[k][unit]);
                lr.set_weights(&w);
                lr.fit_batch(&input, &targets, self.config.w_epochs);
                let trained = Submodel::weights(&lr);
                self.model.weights[k].set_row(unit, &trained[..input.cols()]);
                self.model.biases[k][unit] = trained[input.cols()];
            }
        }
        // Output layer: ridge regression from the last hidden coordinates.
        let input = if k_hidden == 0 {
            x.clone()
        } else {
            self.z[k_hidden - 1].clone()
        };
        let augmented = input.with_bias_column();
        let w = solve_ridge(&augmented, y, 1e-6).expect("output ridge fit");
        let out_width = *self.config.layer_sizes.last().unwrap();
        for unit in 0..out_width {
            for j in 0..input.cols() {
                self.model.weights[k_hidden][(unit, j)] = w[(j, unit)];
            }
            self.model.biases[k_hidden][unit] = w[(input.cols(), unit)];
        }
    }

    /// One Z step: projected gradient descent with backtracking on each
    /// point's auxiliary coordinates, which guarantees the per-point penalty
    /// never increases.
    pub fn z_step(&mut self, x: &Mat, y: &Mat, mu: f64) {
        let k_hidden = self.config.n_hidden_layers();
        if k_hidden == 0 {
            return;
        }
        for n in 0..x.rows() {
            let mut zs: Vec<Vec<f64>> = (0..k_hidden).map(|k| self.z[k].row(n).to_vec()).collect();
            let mut current = self.point_penalty(x.row(n), y.row(n), &zs, mu);
            for _ in 0..self.config.z_steps {
                let grads = self.z_gradient(x.row(n), y.row(n), &zs, mu);
                // Backtracking line search: halve the step until the penalty
                // decreases (or give up and keep the current coordinates).
                let mut step = self.config.z_step_size;
                let mut accepted = false;
                for _ in 0..8 {
                    let candidate: Vec<Vec<f64>> = zs
                        .iter()
                        .zip(&grads)
                        .map(|(zk, gk)| {
                            zk.iter()
                                .zip(gk)
                                .map(|(z, g)| (z - step * g).clamp(0.0, 1.0))
                                .collect()
                        })
                        .collect();
                    let value = self.point_penalty(x.row(n), y.row(n), &candidate, mu);
                    if value < current {
                        zs = candidate;
                        current = value;
                        accepted = true;
                        break;
                    }
                    step *= 0.5;
                }
                if !accepted {
                    break;
                }
            }
            for (k, zk) in zs.into_iter().enumerate() {
                self.z[k].set_row(n, &zk);
            }
        }
    }

    /// The per-point quadratic-penalty value for candidate coordinates.
    fn point_penalty(&self, x: &[f64], y: &[f64], zs: &[Vec<f64>], mu: f64) -> f64 {
        let k_hidden = zs.len();
        let mut total = 0.0;
        for k in 0..k_hidden {
            let input: &[f64] = if k == 0 { x } else { &zs[k - 1] };
            let pred = self.layer_forward(k, input, false);
            total += 0.5
                * mu
                * pred
                    .iter()
                    .zip(&zs[k])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
        }
        let out = self.layer_forward(k_hidden, &zs[k_hidden - 1], true);
        total += 0.5
            * out
                .iter()
                .zip(y)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
        total
    }

    /// Gradient of the per-point penalty objective with respect to each z_k.
    fn z_gradient(&self, x: &[f64], y: &[f64], zs: &[Vec<f64>], mu: f64) -> Vec<Vec<f64>> {
        let k_hidden = zs.len();
        let mut grads: Vec<Vec<f64>> = zs.iter().map(|z| vec![0.0; z.len()]).collect();

        // Residuals of each constraint: r_k = z_k − σ(W_k z_{k−1} + b_k).
        let mut residuals: Vec<Vec<f64>> = Vec::with_capacity(k_hidden);
        for k in 0..k_hidden {
            let input = if k == 0 { x } else { &zs[k - 1] };
            let pred = self.layer_forward(k, input, false);
            residuals.push(zs[k].iter().zip(&pred).map(|(z, p)| z - p).collect());
        }
        // Output residual: r_out = f_out(z_K) − y.
        let out = self.layer_forward(k_hidden, &zs[k_hidden - 1], true);
        let r_out: Vec<f64> = out.iter().zip(y).map(|(o, t)| o - t).collect();

        for k in 0..k_hidden {
            // Term from its own constraint.
            for (g, r) in grads[k].iter_mut().zip(&residuals[k]) {
                *g += mu * r;
            }
            // Term from the layer above (or the output layer for k = K−1).
            if k + 1 < k_hidden {
                let w_up = &self.model.weights[k + 1];
                let input = &zs[k];
                let pre: Vec<f64> = (0..w_up.rows())
                    .map(|u| {
                        w_up.row(u)
                            .iter()
                            .zip(input)
                            .map(|(wi, xi)| wi * xi)
                            .sum::<f64>()
                            + self.model.biases[k + 1][u]
                    })
                    .collect();
                for (u, r_up) in residuals[k + 1].iter().enumerate() {
                    let s = sigmoid(pre[u]);
                    let factor = -mu * r_up * s * (1.0 - s);
                    for (j, g) in grads[k].iter_mut().enumerate() {
                        *g += factor * w_up[(u, j)];
                    }
                }
            } else {
                let w_out = &self.model.weights[k_hidden];
                for (u, r) in r_out.iter().enumerate() {
                    for (j, g) in grads[k].iter_mut().enumerate() {
                        *g += r * w_out[(u, j)];
                    }
                }
            }
        }
        grads
    }

    /// Forward pass through a single layer of the current model.
    fn layer_forward(&self, k: usize, input: &[f64], linear: bool) -> Vec<f64> {
        let w = &self.model.weights[k];
        let b = &self.model.biases[k];
        (0..w.rows())
            .map(|u| {
                let pre: f64 = w
                    .row(u)
                    .iter()
                    .zip(input)
                    .map(|(wi, xi)| wi * xi)
                    .sum::<f64>()
                    + b[u];
                if linear {
                    pre
                } else {
                    sigmoid(pre)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A nonlinear regression problem: y depends on thresholded combinations
    /// of the inputs, which a linear model cannot capture exactly.
    fn toy_problem(n: usize, seed: u64) -> (Mat, Mat) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = Mat::random_normal(n, 3, &mut rng);
        let mut y = Mat::zeros(n, 1);
        for i in 0..n {
            let r = x.row(i);
            y[(i, 0)] =
                (r[0] + 0.5 * r[1]).tanh() - 0.7 * (r[2]).tanh() + 0.1 * rng.gen_range(-1.0..1.0);
        }
        (x, y)
    }

    fn quick_config() -> NestedMacConfig {
        let mut cfg = NestedMacConfig::new(vec![3, 6, 1]);
        cfg.iterations = 6;
        cfg.w_epochs = 20;
        cfg.seed = 1;
        cfg
    }

    #[test]
    fn config_counts_layers_and_submodels() {
        let cfg = NestedMacConfig::new(vec![4, 8, 8, 2]);
        assert_eq!(cfg.n_hidden_layers(), 2);
        assert_eq!(cfg.n_submodels(), 18);
    }

    #[test]
    fn forward_pass_shapes_and_range() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mlp = SigmoidMlp::random(&[3, 5, 2], &mut rng);
        let acts = mlp.forward_all(&[0.1, -0.2, 0.3]);
        assert_eq!(acts.len(), 2);
        assert_eq!(acts[0].len(), 5);
        assert_eq!(acts[1].len(), 2);
        assert!(acts[0].iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn mac_training_reduces_nested_error() {
        let (x, y) = toy_problem(200, 2);
        let mut mac = NestedMac::new(quick_config(), &x, &y);
        let report = mac.run(&x, &y);
        assert!(
            report.final_error < report.initial_error,
            "error went from {} to {}",
            report.initial_error,
            report.final_error
        );
        assert_eq!(report.error_per_iteration.len(), 6);
    }

    #[test]
    fn w_step_reduces_quadratic_penalty_for_fixed_z() {
        let (x, y) = toy_problem(150, 3);
        let mut mac = NestedMac::new(quick_config(), &x, &y);
        let mu = 1.0;
        let before = mac.quadratic_penalty(&x, &y, mu);
        mac.w_step(&x, &y);
        let after = mac.quadratic_penalty(&x, &y, mu);
        assert!(
            after <= before + 1e-6,
            "penalty went from {before} to {after}"
        );
    }

    #[test]
    fn z_step_reduces_quadratic_penalty_for_fixed_w() {
        let (x, y) = toy_problem(120, 4);
        let mut mac = NestedMac::new(quick_config(), &x, &y);
        // Perturb Z so there is room for improvement.
        mac.w_step(&x, &y);
        let mu = 0.5;
        let before = mac.quadratic_penalty(&x, &y, mu);
        mac.z_step(&x, &y, mu);
        let after = mac.quadratic_penalty(&x, &y, mu);
        assert!(
            after <= before + 1e-6,
            "penalty went from {before} to {after}"
        );
    }

    #[test]
    fn nested_mac_beats_linear_output_only_model() {
        // Train the full MAC net and compare with fitting only a linear map
        // x → y (which is what the output-layer ridge alone would do).
        let (x, y) = toy_problem(300, 5);
        let mut mac = NestedMac::new(quick_config(), &x, &y);
        let report = mac.run(&x, &y);

        let augmented = x.with_bias_column();
        let w = solve_ridge(&augmented, &y, 1e-6).unwrap();
        let mut linear_err = 0.0;
        for n in 0..x.rows() {
            let mut pred = w[(x.cols(), 0)];
            for j in 0..x.cols() {
                pred += w[(j, 0)] * x[(n, j)];
            }
            let d: f64 = pred - y[(n, 0)];
            linear_err += 0.5 * d * d;
        }
        assert!(
            report.final_error < linear_err * 1.05,
            "MAC net {} not competitive with linear {}",
            report.final_error,
            linear_err
        );
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_mismatched_input_width() {
        let (x, y) = toy_problem(10, 6);
        let cfg = NestedMacConfig::new(vec![5, 4, 1]);
        let _ = NestedMac::new(cfg, &x, &y);
    }
}
