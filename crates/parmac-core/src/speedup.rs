//! The theoretical parallel-speedup model of §5 (eqs. 7–22).
//!
//! For `P` machines, `N` training points, `M` equal-size submodels, `e` W-step
//! epochs and per-operation times `t_r^W`, `t_c^W`, `t_r^Z`, the model
//! predicts the runtime of one ParMAC iteration,
//!
//! ```text
//! T(P) = M·(N/P)·t_r^Z + P·⌈M/P⌉·( e·( t_r^W·N/P + t_c^W ) + t_c^W ),   P > 1
//! T(1) = M·N·t_r^Z + M·N·e·t_r^W,
//! ```
//!
//! the speedup `S(P) = T(1)/T(P)` (eq. 12), the per-interval maxima `P*_k`,
//! `S*_k` (eq. 17), the global maximum (appendix A.2) and the large-dataset
//! approximation (eq. 20). These are what figs. 4, 5 and the bottom row of
//! fig. 10 plot.

use serde::{Deserialize, Serialize};

/// Parameters of the speedup model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupModel {
    /// Number of training points `N`.
    pub n_points: usize,
    /// Number of equal-size independent submodels `M` (for a BA, `M = 2L`,
    /// §5.4).
    pub n_submodels: usize,
    /// Number of W-step epochs `e`.
    pub epochs: usize,
    /// `t_r^W`: W-step computation time per submodel and data point.
    pub t_w_compute: f64,
    /// `t_c^W`: W-step communication time per submodel hop.
    pub t_w_comm: f64,
    /// `t_r^Z`: Z-step computation time per submodel and data point.
    pub t_z_compute: f64,
}

impl SpeedupModel {
    /// Creates a model; see the field documentation for the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n_points`, `n_submodels` or `epochs` is zero, or any time is
    /// negative.
    pub fn new(
        n_points: usize,
        n_submodels: usize,
        epochs: usize,
        t_w_compute: f64,
        t_w_comm: f64,
        t_z_compute: f64,
    ) -> Self {
        assert!(
            n_points > 0 && n_submodels > 0 && epochs > 0,
            "counts must be positive"
        );
        assert!(
            t_w_compute >= 0.0 && t_w_comm >= 0.0 && t_z_compute >= 0.0,
            "times must be non-negative"
        );
        SpeedupModel {
            n_points,
            n_submodels,
            epochs,
            t_w_compute,
            t_w_comm,
            t_z_compute,
        }
    }

    /// The parameter setting of the paper's fig. 4 "typical" curve:
    /// `N = 10⁶`, `M = 512`, `e = 1`, `t_r^W = 1`, `t_r^Z = 5`, `t_c^W = 10³`.
    pub fn figure4() -> Self {
        SpeedupModel::new(1_000_000, 512, 1, 1.0, 1e3, 5.0)
    }

    /// The ratios `ρ₁`, `ρ₂`, `ρ = ρ₁ + ρ₂` of eq. (13).
    pub fn rho(&self) -> (f64, f64, f64) {
        let e = self.epochs as f64;
        let denom = (e + 1.0) * self.t_w_comm;
        if denom == 0.0 {
            return (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        }
        let rho1 = self.t_z_compute / denom;
        let rho2 = e * self.t_w_compute / denom;
        (rho1, rho2, rho1 + rho2)
    }

    /// Runtime of one iteration on `p` machines (eq. 9; eq. 10 for `p = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn runtime(&self, p: usize) -> f64 {
        assert!(p > 0, "need at least one machine");
        let n = self.n_points as f64;
        let m = self.n_submodels as f64;
        let e = self.epochs as f64;
        if p == 1 {
            return m * n * self.t_z_compute + m * n * e * self.t_w_compute;
        }
        let pf = p as f64;
        let ceil_mp = self.n_submodels.div_ceil(p) as f64;
        let z = m * n / pf * self.t_z_compute;
        let w = pf * ceil_mp * (e * (self.t_w_compute * n / pf + self.t_w_comm) + self.t_w_comm);
        z + w
    }

    /// Parallel speedup `S(P) = T(1)/T(P)` (eq. 12).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn speedup(&self, p: usize) -> f64 {
        self.runtime(1) / self.runtime(p)
    }

    /// The within-interval maximiser `P*_k = sqrt(ρ₁ M N / k)` of eq. (17).
    pub fn p_star(&self, k: usize) -> f64 {
        assert!(k >= 1, "interval index starts at 1");
        let (rho1, _, _) = self.rho();
        (rho1 * self.n_submodels as f64 * self.n_points as f64 / k as f64).sqrt()
    }

    /// The within-interval maximum speedup `S*_k` of eq. (17).
    pub fn s_star(&self, k: usize) -> f64 {
        assert!(k >= 1, "interval index starts at 1");
        let (rho1, rho2, rho) = self.rho();
        let m = self.n_submodels as f64;
        let kf = k as f64;
        (rho * m / kf) / (rho2 + 2.0 * (rho1 * m / (self.n_points as f64 * kf)).sqrt())
    }

    /// The globally optimal (real-valued) number of machines and the speedup
    /// there (appendix A.2): `P = M` when `M ≥ ρ₁N`, otherwise
    /// `P*₁ = sqrt(ρ₁ M N) > M`.
    pub fn optimal_machines(&self) -> (f64, f64) {
        let (rho1, _, rho) = self.rho();
        let m = self.n_submodels as f64;
        let n = self.n_points as f64;
        if m >= rho1 * n {
            let s = m / (1.0 + m / (rho * n));
            (m, s)
        } else {
            (self.p_star(1), self.s_star(1))
        }
    }

    /// The large-dataset approximation of eq. (20): `S(P) ≈ P` when `M` is
    /// divisible by `P`, and `S(P) ≈ ρ / (ρ₁/P + ρ₂/M)` when `M > P`.
    pub fn speedup_large_dataset(&self, p: usize) -> f64 {
        assert!(p > 0, "need at least one machine");
        let (rho1, rho2, rho) = self.rho();
        let m = self.n_submodels as f64;
        if self.n_submodels.is_multiple_of(p) {
            p as f64
        } else {
            rho / (rho1 / p as f64 + rho2 / m)
        }
    }

    /// Evaluates the speedup curve at every `P` in `1..=max_machines`.
    pub fn curve(&self, max_machines: usize) -> Vec<(usize, f64)> {
        (1..=max_machines.max(1))
            .map(|p| (p, self.speedup(p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> SpeedupModel {
        SpeedupModel::figure4()
    }

    #[test]
    fn rho_matches_figure4_caption() {
        let m = typical();
        let (rho1, rho2, rho) = m.rho();
        assert!((rho1 - 0.0025).abs() < 1e-12);
        assert!((rho2 - 0.0005).abs() < 1e-12);
        assert!((rho - 0.003).abs() < 1e-12);
    }

    #[test]
    fn speedup_at_one_machine_is_one() {
        assert!((typical().speedup(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_perfect_speedup_when_m_divisible_by_p() {
        // Eq. (14): S(P) = P / (1 + P/(ρN)); with ρN = 3000 and P = 128 the
        // speedup is within ~5% of perfect.
        let m = typical();
        for &p in &[2usize, 4, 8, 16, 32, 64, 128] {
            assert_eq!(m.n_submodels % p, 0);
            let s = m.speedup(p);
            let bound = p as f64 / (1.0 + p as f64 / (0.003 * 1e6));
            assert!((s - bound).abs() / bound < 1e-9, "P={p}: {s} vs {bound}");
            assert!(s <= p as f64 + 1e-9);
            assert!(s > 0.9 * p as f64, "P={p}: speedup {s}");
        }
    }

    #[test]
    fn speedup_is_monotone_on_divisor_points() {
        // Theorem A.1(3): S(M/k) dominates every earlier P.
        let m = typical();
        let divisor_points: Vec<usize> = (1..=m.n_submodels)
            .filter(|&p| m.n_submodels.is_multiple_of(p))
            .collect();
        let mut prev = 0.0;
        for &p in &divisor_points {
            let s = m.speedup(p);
            assert!(s >= prev, "S({p}) = {s} < previous {prev}");
            prev = s;
        }
    }

    #[test]
    fn maximum_is_beyond_m_for_large_datasets() {
        // With N = 10⁶ and M = 512, M < ρ₁N = 2500, so the optimum sits at
        // P*₁ = sqrt(ρ₁ M N) > M and exceeds S(M).
        let m = typical();
        let (p_opt, s_opt) = m.optimal_machines();
        assert!(p_opt > m.n_submodels as f64);
        assert!(s_opt > m.speedup(m.n_submodels));
        assert!((p_opt - (0.0025f64 * 512.0 * 1e6).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn speedup_eventually_decreases_past_the_optimum() {
        let m = typical();
        let (p_opt, _) = m.optimal_machines();
        let p_far = (p_opt as usize) * 4;
        assert!(m.speedup(p_far) < m.speedup(p_opt.round() as usize));
    }

    #[test]
    fn s_star_decreases_with_interval_index() {
        let m = typical();
        let mut prev = f64::INFINITY;
        for k in 1..=8 {
            let s = m.s_star(k);
            assert!(s < prev, "S*_{k} = {s} not below {prev}");
            prev = s;
        }
    }

    #[test]
    fn dominant_z_step_gives_near_perfect_speedup() {
        // §5.2 "dominant Z step": t_z ≫ t_w, t_c ⇒ S(P) ≈ P even past M.
        let m = SpeedupModel::new(100_000, 8, 1, 1.0, 1.0, 1e6);
        for &p in &[4usize, 16, 64, 256] {
            let s = m.speedup(p);
            assert!(s > 0.95 * p as f64, "P={p}: {s}");
        }
    }

    #[test]
    fn heavy_communication_caps_the_speedup_near_m() {
        // When communication dominates and M is small, S saturates around M
        // instead of growing with P (fig. 5, tWc large rows).
        let m = SpeedupModel::new(50_000, 8, 8, 1.0, 1000.0, 1.0);
        let s_big_p = m.speedup(128);
        assert!(
            s_big_p < 16.0,
            "speedup {s_big_p} should saturate near M = 8"
        );
    }

    #[test]
    fn large_dataset_approximation_close_to_exact_for_divisible_p() {
        let m = typical();
        for &p in &[8usize, 32, 128] {
            let exact = m.speedup(p);
            let approx = m.speedup_large_dataset(p);
            assert!(
                (exact - approx).abs() / approx < 0.06,
                "P={p}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn zero_communication_speedup_is_monotone_increasing() {
        // Appendix A / §5.2: with t_c^W = 0 the speedup never decreases.
        let m = SpeedupModel::new(10_000, 16, 2, 1.0, 0.0, 3.0);
        let mut prev = 0.0;
        for p in 1..=200 {
            let s = m.speedup(p);
            assert!(s >= prev - 1e-9, "P={p}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn curve_has_requested_length() {
        let c = typical().curve(10);
        assert_eq!(c.len(), 10);
        assert_eq!(c[0].0, 1);
        assert!((c[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "counts must be positive")]
    fn rejects_zero_counts() {
        let _ = SpeedupModel::new(0, 1, 1, 1.0, 1.0, 1.0);
    }
}
