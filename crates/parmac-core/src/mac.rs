//! The serial MAC algorithm for binary autoencoders (fig. 1 of the paper).
//!
//! MAC alternates, for an increasing sequence of penalty parameters µ:
//!
//! * **W step** — for fixed codes `Z`, fit the `L` single-bit hash functions
//!   (linear SVMs predicting each code bit from `X`) and the `D` linear
//!   decoders (least squares from `Z` to `X`);
//! * **Z step** — for fixed `(h, f)`, solve the per-point binary proximal
//!   operator (see [`crate::zstep`]).
//!
//! Codes are initialised from truncated PCA, the algorithm stops when the
//! codes stop changing and already satisfy `Z = h(X)`, and (optionally) a
//! validation set provides the early-stopping signal of §3.1.

use crate::ba::BinaryAutoencoder;
use crate::config::BaConfig;
use crate::curve::{IterationRecord, LearningCurve};
use crate::zstep::{self, ZStepProblem};
use parmac_hash::{BinaryCodes, HashFunction, LinearDecoder, LinearHash, TpcaHash};
use parmac_linalg::Mat;
use parmac_optim::sgd::{calibrate_eta0, default_eta0_grid};
use parmac_optim::{LinearSvm, RidgeRegression, SgdConfig, Submodel};
use parmac_retrieval::{hamming_knn, precision as retrieval_precision};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Calibrates the SGD initial step size for the encoder SVMs à la §8.1 ("the
/// SGD step size is tuned automatically in each iteration by examining the
/// first 1 000 datapoints"): each candidate step size is tried for one pass on
/// a prefix of the data and the one with the lowest hinge objective wins.
pub fn calibrate_encoder_sgd(config: SgdConfig, x: &Mat, codes: &BinaryCodes) -> SgdConfig {
    let n = x.rows().min(config.calibration_points.max(1));
    if n == 0 {
        return config;
    }
    let idx: Vec<usize> = (0..n).collect();
    let xs = x.select_rows(&idx);
    let targets: Vec<f64> = (0..n)
        .map(|i| if codes.bit(i, 0) { 1.0 } else { -1.0 })
        .collect();
    let eta = calibrate_eta0(&default_eta0_grid(), |eta| {
        let mut svm = LinearSvm::new(x.cols(), config.with_eta0(eta));
        svm.fit_batch(&xs, &targets, 1);
        svm.objective(&xs, &targets)
    });
    config.with_eta0(eta)
}

/// Calibrates the SGD initial step size for the decoder rows (squared loss on
/// the first feature), as above.
pub fn calibrate_decoder_sgd(config: SgdConfig, codes: &BinaryCodes, x: &Mat) -> SgdConfig {
    let n = x.rows().min(config.calibration_points.max(1));
    if n == 0 {
        return config;
    }
    let mut zs = Mat::zeros(n, codes.n_bits());
    for i in 0..n {
        let row = codes.to_f64_row(i);
        zs.set_row(i, &row);
    }
    let targets: Vec<f64> = (0..n).map(|i| x[(i, 0)]).collect();
    let eta = calibrate_eta0(&default_eta0_grid(), |eta| {
        let mut r = RidgeRegression::new(codes.n_bits(), config.with_eta0(eta));
        r.fit_batch(&zs, &targets, 1);
        r.objective(&zs, &targets)
    });
    config.with_eta0(eta)
}

/// A held-out retrieval evaluation set: database, queries and the Euclidean
/// ground truth, used for the precision curves and early stopping.
#[derive(Debug, Clone)]
pub struct RetrievalEval {
    /// Database feature vectors (one per row).
    pub database: Mat,
    /// Query feature vectors (one per row).
    pub queries: Mat,
    /// For each query, the indices of its true (Euclidean) nearest neighbours
    /// in the database.
    pub ground_truth: Vec<Vec<usize>>,
    /// Number of Hamming neighbours to retrieve per query.
    pub retrieve_k: usize,
}

impl RetrievalEval {
    /// Builds an evaluation set, computing the Euclidean ground truth by brute
    /// force.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ or either `k` is zero.
    pub fn new(database: Mat, queries: Mat, true_k: usize, retrieve_k: usize) -> Self {
        let ground_truth = parmac_retrieval::euclidean_knn(&database, &queries, true_k);
        RetrievalEval {
            database,
            queries,
            ground_truth,
            retrieve_k,
        }
    }

    /// Retrieval precision of a binary autoencoder's hash function on this set.
    pub fn precision_of(&self, model: &BinaryAutoencoder) -> f64 {
        let db_codes = model.encode(&self.database);
        let query_codes = model.encode(&self.queries);
        retrieval_precision(&db_codes, &query_codes, &self.ground_truth, self.retrieve_k)
    }

    /// Precision of an arbitrary hash function (used for baselines).
    pub fn precision_of_hash<H: HashFunction>(&self, hash: &H) -> f64 {
        let db_codes = hash.encode(&self.database);
        let query_codes = hash.encode(&self.queries);
        retrieval_precision(&db_codes, &query_codes, &self.ground_truth, self.retrieve_k)
    }

    /// recall@R curve of a binary autoencoder's hash function on this set,
    /// evaluated at the given cutoffs.
    pub fn recall_curve_of(&self, model: &BinaryAutoencoder, rs: &[usize]) -> Vec<f64> {
        let db_codes = model.encode(&self.database);
        let query_codes = model.encode(&self.queries);
        parmac_retrieval::recall_curve(&db_codes, &query_codes, &self.ground_truth, rs)
    }

    /// Sanity measure used in tests: fraction of queries whose top Hamming
    /// neighbour is also the top Euclidean neighbour.
    pub fn top1_agreement(&self, model: &BinaryAutoencoder) -> f64 {
        let db_codes = model.encode(&self.database);
        let query_codes = model.encode(&self.queries);
        let retrieved = hamming_knn(&db_codes, &query_codes, 1);
        let hits = retrieved
            .iter()
            .zip(&self.ground_truth)
            .filter(|(r, t)| !r.is_empty() && !t.is_empty() && r[0] == t[0])
            .count();
        hits as f64 / retrieved.len().max(1) as f64
    }
}

/// Summary of a MAC (or ParMAC) training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MacReport {
    /// Per-iteration learning curve: the optimisation path *before* the final
    /// decoder refit, matching what the paper's fig. 7/8 plot. Its last record
    /// therefore differs from [`final_ba_error`](Self::final_ba_error), which
    /// describes the returned model.
    pub curve: LearningCurve,
    /// `E_BA` of the initial (tPCA-initialised) model.
    pub initial_ba_error: f64,
    /// `E_BA` of the *returned* model, i.e. after the final decoder refit on
    /// the binarised codes (see [`refit_decoder`]). Use the curve's last
    /// record for the pre-refit path value instead.
    pub final_ba_error: f64,
    /// Number of MAC iterations actually run (µ values consumed).
    pub iterations_run: usize,
    /// Whether the run stopped before exhausting the µ schedule (either the
    /// codes converged or validation precision decreased).
    pub stopped_early: bool,
}

/// The serial MAC/BA trainer.
#[derive(Debug, Clone)]
pub struct MacTrainer {
    config: BaConfig,
    model: BinaryAutoencoder,
    codes: BinaryCodes,
    rng: SmallRng,
}

/// Refits the decoder optimally to `(h(X), X)` by least squares — the final W
/// half-step of the BA-MAC algorithm (§3.1): once training fixes the hash
/// function `h`, the best reconstruction uses the decoder fitted to the
/// *binarised* codes `h(X)` rather than the auxiliary codes `Z`, so the
/// reported `E_BA` is the minimum achievable for the returned hash. The
/// encoder (and therefore retrieval behaviour) is untouched.
pub fn refit_decoder(model: &mut BinaryAutoencoder, x: &Mat, ridge: f64) {
    let hx = model.encode(x);
    model.set_decoder(LinearDecoder::fit_least_squares(&hx.to_matrix(), x, ridge));
}

/// Initialises a binary autoencoder and its auxiliary codes from data:
/// truncated-PCA codes (§8.1), a tPCA encoder, and a least-squares decoder
/// fitted to reconstruct `x` from those codes. Falls back to a random encoder
/// when `L > D` (tPCA undefined).
pub fn initialize_ba(
    config: &BaConfig,
    x: &Mat,
    rng: &mut SmallRng,
) -> (BinaryAutoencoder, BinaryCodes) {
    let encoder = if config.n_bits <= x.cols() && x.rows() > config.n_bits {
        TpcaHash::fit(x, config.n_bits)
            .map(TpcaHash::into_linear_hash)
            .unwrap_or_else(|_| LinearHash::random(config.n_bits, x.cols(), rng))
    } else {
        LinearHash::random(config.n_bits, x.cols(), rng)
    };
    let codes = encoder.encode(x);
    let decoder = LinearDecoder::fit_least_squares(&codes.to_matrix(), x, config.decoder_ridge);
    (BinaryAutoencoder::new(encoder, decoder), codes)
}

impl MacTrainer {
    /// Creates a trainer with tPCA-initialised codes and model for the
    /// training matrix `x` (one row per point).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty.
    pub fn new(config: BaConfig, x: &Mat) -> Self {
        assert!(
            x.rows() > 0 && x.cols() > 0,
            "training data must be non-empty"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let (model, codes) = initialize_ba(&config, x, &mut rng);
        MacTrainer {
            config,
            model,
            codes,
            rng,
        }
    }

    /// The current model.
    pub fn model(&self) -> &BinaryAutoencoder {
        &self.model
    }

    /// The current auxiliary codes `Z`.
    pub fn codes(&self) -> &BinaryCodes {
        &self.codes
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BaConfig {
        &self.config
    }

    /// Runs MAC over the full µ schedule on training data `x`, without a
    /// validation set.
    pub fn run(&mut self, x: &Mat) -> MacReport {
        self.run_with_eval(x, None)
    }

    /// Runs MAC with an optional retrieval-evaluation set providing the
    /// precision curve and (if enabled) early stopping.
    pub fn run_with_eval(&mut self, x: &Mat, eval: Option<&RetrievalEval>) -> MacReport {
        assert_eq!(x.rows(), self.codes.len(), "data/code count mismatch");
        // lint: allow(wallclock-determinism) — report-only wall-clock for the learning curve; never feeds training
        let start = Instant::now();
        let mut curve = LearningCurve::new();
        let initial_ba_error = self.model.ba_error(x);
        let initial_precision = eval.map(|e| e.precision_of(&self.model));
        curve.push(IterationRecord {
            iteration: 0,
            mu: 0.0,
            quadratic_penalty: self.model.quadratic_penalty(x, &self.codes, 0.0),
            ba_error: initial_ba_error,
            precision: initial_precision,
            simulated_time: 0.0,
            wall_clock_secs: 0.0,
        });

        let mut best_precision = initial_precision.unwrap_or(f64::NEG_INFINITY);
        let mut best_model = self.model.clone();
        let mut best_codes = self.codes.clone();
        let mut iterations_run = 0;
        let mut stopped_early = false;

        let schedule: Vec<f64> = self.config.mu_schedule.iter().collect();
        for (i, &mu) in schedule.iter().enumerate() {
            self.w_step(x);
            let changed = self.z_step(x, mu);
            iterations_run = i + 1;

            let precision = eval.map(|e| e.precision_of(&self.model));
            curve.push(IterationRecord {
                iteration: iterations_run,
                mu,
                quadratic_penalty: self.model.quadratic_penalty(x, &self.codes, mu),
                ba_error: self.model.ba_error(x),
                precision,
                simulated_time: 0.0,
                wall_clock_secs: start.elapsed().as_secs_f64(),
            });

            if let Some(p) = precision {
                if p >= best_precision {
                    best_precision = p;
                    best_model = self.model.clone();
                    best_codes = self.codes.clone();
                } else if self.config.early_stopping {
                    stopped_early = true;
                    self.model = best_model.clone();
                    self.codes = best_codes.clone();
                    break;
                }
            }

            // Stopping criterion of §3.1: Z did not change and Z = h(X).
            if !changed {
                let hx = self.model.encode(x);
                if self.codes.total_differing_bits(&hx) == 0 {
                    stopped_early = iterations_run < schedule.len();
                    break;
                }
            }
        }

        // Keep the best-precision model when an evaluation set is available
        // (the "guarantees that we improve (or leave unchanged) the initial Z"
        // property of §3.1's early stopping).
        if eval.is_some() && best_precision > f64::NEG_INFINITY {
            let current = eval
                .map(|e| e.precision_of(&self.model))
                .unwrap_or(best_precision);
            if best_precision > current {
                self.model = best_model;
                self.codes = best_codes;
            }
        }

        // Final W half-step on the binarised codes (§3.1 of the BA paper); see
        // [`refit_decoder`].
        refit_decoder(&mut self.model, x, self.config.decoder_ridge);

        MacReport {
            final_ba_error: self.model.ba_error(x),
            initial_ba_error,
            curve,
            iterations_run,
            stopped_early,
        }
    }

    /// One W step: fit the `L` hash SVMs on `(X, Z)` and the decoder on
    /// `(Z, X)` (exactly or by SGD, per the configuration).
    pub fn w_step(&mut self, x: &Mat) {
        let z_mat = self.codes.to_matrix();
        // Encoder: L binary SVMs predicting each bit from X, with the step
        // size calibrated on a prefix of the data (§8.1).
        let encoder_sgd = calibrate_encoder_sgd(self.config.sgd, x, &self.codes);
        let mut svms = self.model.encoder().to_svms(encoder_sgd);
        for (bit, svm) in svms.iter_mut().enumerate() {
            let targets: Vec<f64> = (0..x.rows())
                .map(|n| if self.codes.bit(n, bit) { 1.0 } else { -1.0 })
                .collect();
            let epochs = if self.config.exact_w_step {
                (self.config.epochs * 10).max(20)
            } else {
                self.config.epochs
            };
            svm.fit_batch(x, &targets, epochs);
        }
        self.model.set_encoder(LinearHash::from_svms(&svms));

        // Decoder: D least-squares problems from Z to X.
        if self.config.exact_w_step {
            self.model.set_decoder(LinearDecoder::fit_least_squares(
                &z_mat,
                x,
                self.config.decoder_ridge,
            ));
        } else {
            let decoder_sgd = calibrate_decoder_sgd(self.config.sgd, &self.codes, x);
            let mut rows = self.model.decoder().to_ridge_rows(decoder_sgd);
            for (out, row) in rows.iter_mut().enumerate() {
                let targets: Vec<f64> = x.col(out);
                row.fit_batch(&z_mat, &targets, self.config.epochs);
            }
            self.model
                .set_decoder(LinearDecoder::from_ridge_rows(&rows));
        }
        // Deterministic but stateful RNG use keeps shuffling-based variants
        // reproducible; the serial trainer itself needs no randomness here.
        let _ = &mut self.rng;
    }

    /// One Z step: solve the binary proximal operator for every point through
    /// the shared shard solver ([`zstep::solve_shard`], treating the whole
    /// dataset as one shard) — one reusable workspace and one batched
    /// multi-RHS relaxed init, bitwise identical to the distributed sweeps.
    /// Returns whether any code changed.
    pub fn z_step(&mut self, x: &Mat, mu: f64) -> bool {
        let method = self.config.resolved_z_method();
        let problem = ZStepProblem::new(self.model.decoder(), mu);
        let points: Vec<usize> = (0..x.rows()).collect();
        let hx = zstep::encoder_outputs(x, &points, self.model.decoder().n_bits(), |row| {
            self.model.encoder().encode_one(row)
        });
        let codes = &mut self.codes;
        let mut changed = false;
        zstep::solve_shard(
            method,
            &problem,
            x,
            &points,
            &hx,
            self.config.z_alternations,
            |n, z_new| {
                if !codes.row_equals(n, z_new) {
                    changed = true;
                    codes.set_code(n, z_new);
                }
            },
        );
        changed
    }

    /// Consumes the trainer and returns the final model.
    pub fn into_model(self) -> BinaryAutoencoder {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn small_dataset(seed: u64) -> Mat {
        gaussian_mixture(&MixtureConfig::new(200, 12, 4).with_seed(seed)).features
    }

    fn quick_config(bits: usize) -> BaConfig {
        BaConfig::new(bits)
            .with_mu_schedule(0.02, 2.0, 6)
            .with_exact_w_step(true)
            .with_seed(3)
    }

    #[test]
    fn initialisation_matches_tpca_codes() {
        let x = small_dataset(0);
        let trainer = MacTrainer::new(quick_config(6), &x);
        // Codes must equal the encoder's output at initialisation.
        let hx = trainer.model().encode(&x);
        assert_eq!(trainer.codes().total_differing_bits(&hx), 0);
    }

    #[test]
    fn mac_does_not_increase_ba_error() {
        let x = small_dataset(1);
        let mut trainer = MacTrainer::new(quick_config(6), &x);
        let report = trainer.run(&x);
        assert!(
            report.final_ba_error <= report.initial_ba_error * 1.001,
            "E_BA went from {} to {}",
            report.initial_ba_error,
            report.final_ba_error
        );
        assert!(report.iterations_run >= 1);
        assert_eq!(report.curve.len(), report.iterations_run + 1);
    }

    #[test]
    fn sgd_w_step_also_trains() {
        let x = small_dataset(2);
        let cfg = BaConfig::new(6)
            .with_mu_schedule(0.02, 2.0, 5)
            .with_epochs(3)
            .with_seed(5);
        let mut trainer = MacTrainer::new(cfg, &x);
        let report = trainer.run(&x);
        assert!(report.final_ba_error <= report.initial_ba_error * 1.05);
    }

    #[test]
    fn precision_curve_is_recorded_with_eval_set() {
        let data = gaussian_mixture(&MixtureConfig::new(300, 12, 4).with_seed(4));
        let x = data.train_features();
        let eval = RetrievalEval::new(x.clone(), data.query_features(), 10, 5);
        let mut trainer = MacTrainer::new(quick_config(6), &x);
        let report = trainer.run_with_eval(&x, Some(&eval));
        assert!(report.curve.records().iter().all(|r| r.precision.is_some()));
        let best = report.curve.best_precision().unwrap();
        assert!(best > 0.0);
        // The returned model is at least as good as the initialisation.
        let init_precision = report.curve.records()[0].precision.unwrap();
        let final_precision = eval.precision_of(trainer.model());
        assert!(final_precision >= init_precision - 1e-9);
    }

    #[test]
    fn early_stopping_halts_before_schedule_exhausted_or_keeps_best() {
        let data = gaussian_mixture(&MixtureConfig::new(250, 10, 3).with_seed(6));
        let x = data.train_features();
        let eval = RetrievalEval::new(x.clone(), data.query_features(), 10, 5);
        let cfg = quick_config(5).with_early_stopping(true);
        let mut trainer = MacTrainer::new(cfg, &x);
        let report = trainer.run_with_eval(&x, Some(&eval));
        // Either it ran the whole schedule without a precision drop, or it
        // stopped early; both are fine, but the report must be consistent.
        assert!(report.iterations_run <= cfg.mu_schedule.len());
        if report.stopped_early {
            assert!(report.iterations_run <= cfg.mu_schedule.len());
        }
    }

    #[test]
    fn stopping_criterion_triggers_for_huge_mu() {
        // With an aggressive schedule µ quickly forces Z = h(X) and the run
        // stops before exhausting a long schedule.
        let x = small_dataset(7);
        let cfg = BaConfig::new(5)
            .with_mu_schedule(10.0, 10.0, 30)
            .with_exact_w_step(true)
            .with_seed(8);
        let mut trainer = MacTrainer::new(cfg, &x);
        let report = trainer.run(&x);
        assert!(
            report.iterations_run < 30,
            "ran {} iterations",
            report.iterations_run
        );
    }

    #[test]
    fn trained_ba_beats_tpca_on_retrieval_precision() {
        let data = gaussian_mixture(
            &MixtureConfig::new(400, 16, 6)
                .with_seed(9)
                .with_noise(1.0, 0.3),
        );
        let x = data.train_features();
        let eval = RetrievalEval::new(x.clone(), data.query_features(), 10, 10);
        let tpca = parmac_hash::TpcaHash::fit(&x, 8).unwrap();
        let tpca_precision = eval.precision_of_hash(&tpca);
        let cfg = BaConfig::new(8)
            .with_mu_schedule(0.01, 2.0, 8)
            .with_exact_w_step(true)
            .with_seed(10);
        let mut trainer = MacTrainer::new(cfg, &x);
        trainer.run_with_eval(&x, Some(&eval));
        let ba_precision = eval.precision_of(trainer.model());
        assert!(
            ba_precision >= tpca_precision - 0.02,
            "BA precision {ba_precision} much worse than tPCA {tpca_precision}"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_data_rejected() {
        let _ = MacTrainer::new(quick_config(4), &Mat::zeros(0, 4));
    }
}
