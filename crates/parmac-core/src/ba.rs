//! The binary autoencoder model and its objectives.
//!
//! A binary autoencoder (BA) is an encoder `h(x) = step(Ax)` producing an
//! `L`-bit code and a linear decoder `f(z)` mapping the code back to `R^D`
//! (§3.1). Its objectives are
//!
//! * the nested reconstruction error `E_BA(h, f) = Σ‖x_n − f(h(x_n))‖²`
//!   (eq. 1), and
//! * the quadratic-penalty objective
//!   `E_Q(h, f, Z; µ) = Σ‖x_n − f(z_n)‖² + µ‖z_n − h(x_n)‖²` (eq. 3)
//!   that MAC actually minimises for each µ.

use parmac_hash::{BinaryCodes, HashFunction, LinearDecoder, LinearHash};
use parmac_linalg::Mat;
use serde::{Deserialize, Serialize};

/// A binary autoencoder: linear (or kernelised, via pre-expanded inputs) hash
/// encoder plus linear decoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryAutoencoder {
    encoder: LinearHash,
    decoder: LinearDecoder,
}

impl BinaryAutoencoder {
    /// Combines an encoder and decoder into an autoencoder.
    ///
    /// # Panics
    ///
    /// Panics if the encoder's bit count differs from the decoder's.
    pub fn new(encoder: LinearHash, decoder: LinearDecoder) -> Self {
        assert_eq!(
            encoder.n_bits(),
            decoder.n_bits(),
            "encoder and decoder must agree on the number of bits"
        );
        BinaryAutoencoder { encoder, decoder }
    }

    /// Number of code bits `L`.
    pub fn n_bits(&self) -> usize {
        self.encoder.n_bits()
    }

    /// Input dimensionality `D` expected by the encoder.
    pub fn input_dim(&self) -> usize {
        self.encoder.input_dim()
    }

    /// The encoder (hash function) `h`.
    pub fn encoder(&self) -> &LinearHash {
        &self.encoder
    }

    /// The decoder `f`.
    pub fn decoder(&self) -> &LinearDecoder {
        &self.decoder
    }

    /// Replaces the encoder (after a W step).
    ///
    /// # Panics
    ///
    /// Panics if the bit counts no longer match.
    pub fn set_encoder(&mut self, encoder: LinearHash) {
        assert_eq!(encoder.n_bits(), self.decoder.n_bits());
        self.encoder = encoder;
    }

    /// Replaces the decoder (after a W step).
    ///
    /// # Panics
    ///
    /// Panics if the bit counts no longer match.
    pub fn set_decoder(&mut self, decoder: LinearDecoder) {
        assert_eq!(decoder.n_bits(), self.encoder.n_bits());
        self.decoder = decoder;
    }

    /// Encodes the rows of `x` into binary codes.
    pub fn encode(&self, x: &Mat) -> BinaryCodes {
        self.encoder.encode(x)
    }

    /// Reconstructs inputs from codes.
    pub fn decode(&self, codes: &BinaryCodes) -> Mat {
        self.decoder.decode(codes)
    }

    /// The nested objective `E_BA` of eq. (1): `Σ‖x_n − f(h(x_n))‖²`.
    pub fn ba_error(&self, x: &Mat) -> f64 {
        let codes = self.encode(x);
        self.decoder.reconstruction_error(&codes, x)
    }

    /// Mean (per point, per dimension) reconstruction error, handy for
    /// comparing datasets of different sizes.
    pub fn ba_error_per_point(&self, x: &Mat) -> f64 {
        if x.rows() == 0 {
            return 0.0;
        }
        self.ba_error(x) / x.rows() as f64
    }

    /// The quadratic-penalty objective `E_Q` of eq. (3) for given auxiliary
    /// coordinates `z` and penalty parameter `mu`:
    /// `Σ‖x_n − f(z_n)‖² + µ·‖z_n − h(x_n)‖²`.
    ///
    /// Because both `z_n` and `h(x_n)` are binary, `‖z_n − h(x_n)‖²` is the
    /// Hamming distance between the auxiliary code and the encoder's output.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != x.rows()` or the code widths differ from `L`.
    pub fn quadratic_penalty(&self, x: &Mat, z: &BinaryCodes, mu: f64) -> f64 {
        assert_eq!(z.len(), x.rows(), "one code per data point required");
        assert_eq!(z.n_bits(), self.n_bits(), "code width mismatch");
        let reconstruction = self.decoder.reconstruction_error(z, x);
        let hx = self.encode(x);
        let constraint = z.total_differing_bits(&hx) as f64;
        reconstruction + mu * constraint
    }

    /// Convenience accessor returning both terms of `E_Q` separately:
    /// `(Σ‖x_n − f(z_n)‖², Σ‖z_n − h(x_n)‖²)`.
    pub fn penalty_terms(&self, x: &Mat, z: &BinaryCodes) -> (f64, f64) {
        let reconstruction = self.decoder.reconstruction_error(z, x);
        let hx = self.encode(x);
        (reconstruction, z.total_differing_bits(&hx) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parmac_linalg::Mat;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn toy_autoencoder(seed: u64) -> (BinaryAutoencoder, Mat) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x = Mat::random_normal(40, 6, &mut rng);
        let encoder = LinearHash::random(4, 6, &mut rng);
        // Decoder fitted to reconstruct from the encoder's own codes.
        let codes = encoder.encode(&x);
        let decoder = LinearDecoder::fit_least_squares(&codes.to_matrix(), &x, 1e-6);
        (BinaryAutoencoder::new(encoder, decoder), x)
    }

    #[test]
    fn ba_error_is_nonnegative_and_decreases_with_fitted_decoder() {
        let (ba, x) = toy_autoencoder(0);
        let err = ba.ba_error(&x);
        assert!(err >= 0.0);
        // An unfitted (zero) decoder is worse than the least-squares decoder.
        let zero = BinaryAutoencoder::new(ba.encoder().clone(), LinearDecoder::zeros(6, 4));
        assert!(zero.ba_error(&x) >= err);
    }

    #[test]
    fn penalty_reduces_to_ba_error_when_z_equals_hx() {
        let (ba, x) = toy_autoencoder(1);
        let z = ba.encode(&x);
        let eq = ba.quadratic_penalty(&x, &z, 123.0);
        assert!((eq - ba.ba_error(&x)).abs() < 1e-9);
    }

    #[test]
    fn penalty_grows_linearly_with_mu_for_fixed_violation() {
        let (ba, x) = toy_autoencoder(2);
        let mut z = ba.encode(&x);
        // Flip one bit to create exactly one constraint violation.
        let current = z.bit(0, 0);
        z.set_bit(0, 0, !current);
        let e1 = ba.quadratic_penalty(&x, &z, 1.0);
        let e5 = ba.quadratic_penalty(&x, &z, 5.0);
        let (_, violation) = ba.penalty_terms(&x, &z);
        assert_eq!(violation, 1.0);
        assert!((e5 - e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn per_point_error_scales() {
        let (ba, x) = toy_autoencoder(3);
        assert!((ba.ba_error_per_point(&x) * x.rows() as f64 - ba.ba_error(&x)).abs() < 1e-9);
        assert_eq!(ba.ba_error_per_point(&Mat::zeros(0, 6)), 0.0);
    }

    #[test]
    #[should_panic(expected = "agree on the number of bits")]
    fn mismatched_encoder_decoder_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let encoder = LinearHash::random(4, 6, &mut rng);
        let decoder = LinearDecoder::zeros(6, 5);
        let _ = BinaryAutoencoder::new(encoder, decoder);
    }

    #[test]
    fn accessors_round_trip() {
        let (ba, _) = toy_autoencoder(5);
        assert_eq!(ba.n_bits(), 4);
        assert_eq!(ba.input_dim(), 6);
        let mut copy = ba.clone();
        copy.set_encoder(ba.encoder().clone());
        copy.set_decoder(ba.decoder().clone());
        assert_eq!(copy, ba);
    }
}
