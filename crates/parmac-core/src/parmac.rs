//! ParMAC: the distributed MAC trainer (§4).
//!
//! Data and auxiliary coordinates are partitioned over `P` machines and never
//! move; the submodels (the `L` hash SVMs and the `D` decoder rows) circulate
//! around the ring and are trained by SGD on each machine's shard (the W
//! step); the Z step is purely local and embarrassingly parallel over points.
//! The trainer is generic over a [`ClusterBackend`] execution engine:
//!
//! * [`SimBackend`] — the deterministic synchronous simulator with a
//!   [`CostModel`](parmac_cluster::CostModel), which also produces the
//!   simulated runtimes used for the speedup experiments;
//! * [`ThreadedBackend`](parmac_cluster::ThreadedBackend) — real threads and channels: one thread per machine
//!   for the W-step ring and one scoped thread per shard for the Z step;
//! * [`PoolBackend`](parmac_cluster::PoolBackend) — a work-stealing thread
//!   pool (§8.5's shared-memory configuration): the Z step is split into
//!   stealable point chunks, the W step drains each machine's submodel queue
//!   across the local workers;
//! * [`ServerBackend`](parmac_cluster::ServerBackend) — machines as
//!   long-lived actors behind typed mailboxes: W-step envelopes routed by
//!   their own visit lists, the Z step as request/reply exchanges, and a
//!   resident serving fleet answering Hamming k-NN queries *during* training
//!   (obtain a [`QueryRouter`](parmac_cluster::QueryRouter) from the backend
//!   before handing it to the trainer). All four produce bitwise-identical
//!   models.
//!
//! The trainer contains no backend-specific dispatch; further substrates
//! (e.g. MPI ranks) plug in by implementing the trait in `parmac-cluster` —
//! see `ClusterBackend`'s docs. Backends that also *serve* are kept fresh
//! through [`ClusterBackend::publish_codes`]: the trainer publishes the
//! auxiliary codes whenever they are (re)built outside a Z step.
//!
//! Extensions of §4.2–4.3 are supported: within-machine minibatch shuffling,
//! cross-machine (topology) shuffling, the two-round communication scheme,
//! fault injection and streaming (via the underlying cluster crate).

use crate::ba::BinaryAutoencoder;
use crate::config::ParMacConfig;
use crate::curve::{IterationRecord, LearningCurve};
use crate::mac::{initialize_ba, refit_decoder, MacReport, RetrievalEval};
use crate::zstep::{self, ZStepProblem};
use parking_lot::Mutex;
use parmac_cluster::{
    ClusterBackend, Fault, SimBackend, SimCluster, WStepStats, ZStepStats, ZUpdate,
};
use parmac_data::{partition_equal, partition_proportional};
use parmac_hash::{BinaryCodes, HashFunction, LinearDecoder, LinearHash};
use parmac_linalg::Mat;
use parmac_optim::{LinearSvm, RidgeRegression};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Report of a ParMAC run: the MAC-level learning curve plus the distributed
/// execution statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParMacReport {
    /// Learning curve and convergence summary (same shape as the serial
    /// trainer's report, so they can be compared directly).
    pub mac: MacReport,
    /// Per-iteration W-step statistics.
    pub w_steps: Vec<WStepStats>,
    /// Per-iteration Z-step statistics.
    pub z_steps: Vec<ZStepStats>,
    /// Total simulated time (cost-model units) across all iterations.
    pub total_simulated_time: f64,
    /// Total wall-clock seconds.
    pub total_wall_clock_secs: f64,
}

/// A submodel circulating in the W step: one hash bit or one decoder row.
#[derive(Debug, Clone)]
enum BaSubmodel {
    Hash { bit: usize, svm: LinearSvm },
    DecoderRow { out: usize, ridge: RidgeRegression },
}

/// The distributed ParMAC trainer for binary autoencoders, generic over the
/// [`ClusterBackend`] execution engine.
#[derive(Debug, Clone)]
pub struct ParMacTrainer<B: ClusterBackend = SimBackend> {
    config: ParMacConfig,
    backend: B,
    model: BinaryAutoencoder,
    codes: BinaryCodes,
    cluster: SimCluster,
    fault_plan: Option<(usize, Fault)>,
    rng: SmallRng,
}

impl<B: ClusterBackend> ParMacTrainer<B> {
    /// Creates a trainer: initialises the model/codes exactly like the serial
    /// trainer (tPCA), partitions the points equally over the machines and
    /// builds the ring. The cluster charges simulated time to the backend's
    /// cost model.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or has fewer points than machines.
    pub fn new(mut config: ParMacConfig, x: &Mat, backend: B) -> Self {
        assert!(
            x.rows() > 0 && x.cols() > 0,
            "training data must be non-empty"
        );
        assert!(
            x.rows() >= config.n_machines,
            "need at least one data point per machine"
        );
        // The within-machine minibatch size is a ParMAC-level setting; push it
        // into the submodels' SGD configuration.
        config.ba.sgd = config.ba.sgd.with_minibatch_size(config.minibatch_size);
        let mut rng = SmallRng::seed_from_u64(config.ba.seed);
        let (model, codes) = initialize_ba(&config.ba, x, &mut rng);
        let shards = partition_equal(x.rows(), config.n_machines).into_shards();
        let cluster = SimCluster::new(shards, backend.cost_model());
        // Serving backends (ServerBackend) mirror the initial codes into
        // their resident fleet; computational backends ignore this.
        backend.publish_codes(&cluster, &codes);
        ParMacTrainer {
            config,
            backend,
            model,
            codes,
            cluster,
            fault_plan: None,
            rng,
        }
    }

    /// Injects a machine fault during the W step of MAC iteration
    /// `at_iteration` (0-based), exercising the recovery path of §4.3. Only
    /// honoured by backends that simulate faults (see
    /// [`ClusterBackend::run_w_step`]).
    pub fn with_fault(mut self, at_iteration: usize, fault: Fault) -> Self {
        self.fault_plan = Some((at_iteration, fault));
        self
    }

    /// Re-balances the data proportionally to per-machine speeds (§4.3:
    /// machine `p` gets `N·α_p / Σα` points) and records the speeds in the
    /// cluster's cost accounting. Call before training starts; the model and
    /// code initialisation are per-point and unaffected by the partition.
    ///
    /// # Panics
    ///
    /// Panics if the number of speeds differs from the number of machines or
    /// any speed is not positive and finite.
    pub fn with_machine_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(
            speeds.len(),
            self.config.n_machines,
            "one speed per machine"
        );
        let shards = partition_proportional(self.codes.len(), &speeds).into_shards();
        self.cluster = SimCluster::new(shards, self.backend.cost_model()).with_speeds(speeds);
        self.backend.publish_codes(&self.cluster, &self.codes);
        self
    }

    /// The execution backend in use.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The current model.
    pub fn model(&self) -> &BinaryAutoencoder {
        &self.model
    }

    /// The current auxiliary codes `Z`.
    pub fn codes(&self) -> &BinaryCodes {
        &self.codes
    }

    /// The cluster (shards, topology, cost model).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ParMacConfig {
        &self.config
    }

    /// Runs ParMAC over the full µ schedule without an evaluation set.
    pub fn run(&mut self, x: &Mat) -> ParMacReport {
        self.run_with_eval(x, None)
    }

    /// Runs ParMAC, optionally evaluating retrieval precision each iteration
    /// (for the learning curves and early stopping).
    pub fn run_with_eval(&mut self, x: &Mat, eval: Option<&RetrievalEval>) -> ParMacReport {
        assert_eq!(x.rows(), self.codes.len(), "data/code count mismatch");
        // lint: allow(wallclock-determinism) — report-only wall-clock for the learning curve; never feeds training
        let start = Instant::now();
        let mut curve = LearningCurve::new();
        let mut w_steps = Vec::new();
        let mut z_steps = Vec::new();
        let mut simulated_time = 0.0;

        let initial_ba_error = self.model.ba_error(x);
        let initial_precision = eval.map(|e| e.precision_of(&self.model));
        curve.push(IterationRecord {
            iteration: 0,
            mu: 0.0,
            quadratic_penalty: self.model.quadratic_penalty(x, &self.codes, 0.0),
            ba_error: initial_ba_error,
            precision: initial_precision,
            simulated_time: 0.0,
            wall_clock_secs: 0.0,
        });

        let mut best_precision = initial_precision.unwrap_or(f64::NEG_INFINITY);
        let mut best_model = self.model.clone();
        let mut best_codes = self.codes.clone();
        let mut iterations_run = 0;
        let mut stopped_early = false;

        let schedule: Vec<f64> = self.config.ba.mu_schedule.iter().collect();
        for (i, &mu) in schedule.iter().enumerate() {
            if self.config.cross_machine_shuffling {
                self.cluster.shuffle_topology(&mut self.rng);
            }
            let w_stats = self.w_step(x, i);
            simulated_time += w_stats.timings.simulated;
            w_steps.push(w_stats);

            let (changed, z_stats) = self.z_step(x, mu);
            simulated_time += z_stats.timings.simulated;
            z_steps.push(z_stats);
            iterations_run = i + 1;

            let precision = eval.map(|e| e.precision_of(&self.model));
            curve.push(IterationRecord {
                iteration: iterations_run,
                mu,
                quadratic_penalty: self.model.quadratic_penalty(x, &self.codes, mu),
                ba_error: self.model.ba_error(x),
                precision,
                simulated_time,
                wall_clock_secs: start.elapsed().as_secs_f64(),
            });

            if let Some(p) = precision {
                if p >= best_precision {
                    best_precision = p;
                    best_model = self.model.clone();
                    best_codes = self.codes.clone();
                } else if self.config.ba.early_stopping {
                    stopped_early = true;
                    self.model = best_model.clone();
                    self.codes = best_codes.clone();
                    break;
                }
            }

            if !changed {
                let hx = self.model.encode(x);
                if self.codes.total_differing_bits(&hx) == 0 {
                    stopped_early = iterations_run < schedule.len();
                    break;
                }
            }
        }

        if eval.is_some() && best_precision > f64::NEG_INFINITY {
            let current = eval
                .map(|e| e.precision_of(&self.model))
                .unwrap_or(best_precision);
            if best_precision > current {
                self.model = best_model;
                self.codes = best_codes;
            }
        }

        // Final W half-step on the binarised codes (§3.1 of the BA paper): fit
        // the decoder optimally to (h(X), X), so the reported E_BA is the best
        // achievable for the returned hash function. Retrieval precision only
        // depends on the encoder, so this never changes the model selection.
        refit_decoder(&mut self.model, x, self.config.ba.decoder_ridge);

        // Early stopping may have restored the best-model codes above; push
        // the final codes to any serving backend so post-training queries see
        // exactly what the trainer returns.
        self.backend.publish_codes(&self.cluster, &self.codes);

        ParMacReport {
            mac: MacReport {
                final_ba_error: self.model.ba_error(x),
                initial_ba_error,
                curve,
                iterations_run,
                stopped_early,
            },
            w_steps,
            z_steps,
            total_simulated_time: simulated_time,
            total_wall_clock_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// One distributed W step: the submodels circulate around the ring and are
    /// updated by SGD on each machine's shard. Returns the step statistics.
    pub fn w_step(&mut self, x: &Mat, iteration: usize) -> WStepStats {
        let ba_cfg = self.config.ba;
        // Automatic step-size calibration on a data prefix (§8.1), once per W
        // step for each submodel family.
        let encoder_sgd = crate::mac::calibrate_encoder_sgd(ba_cfg.sgd, x, &self.codes);
        let decoder_sgd = crate::mac::calibrate_decoder_sgd(ba_cfg.sgd, &self.codes, x);
        // Build the circulating submodels from the current model.
        let mut submodels: Vec<BaSubmodel> = Vec::with_capacity(ba_cfg.n_bits + x.cols());
        for (bit, svm) in self
            .model
            .encoder()
            .to_svms(encoder_sgd)
            .into_iter()
            .enumerate()
        {
            submodels.push(BaSubmodel::Hash { bit, svm });
        }
        for (out, ridge) in self
            .model
            .decoder()
            .to_ridge_rows(decoder_sgd)
            .into_iter()
            .enumerate()
        {
            submodels.push(BaSubmodel::DecoderRow { out, ridge });
        }

        // §4.2: with two-round communication each machine runs all e passes
        // locally and the ring is traversed only once.
        let (ring_epochs, local_passes) = if self.config.two_round_communication {
            (1, ba_cfg.epochs)
        } else {
            (ba_cfg.epochs, 1)
        };

        let params_per_submodel = x.cols() + 1;
        let codes = &self.codes;
        let plan = VisitPlan {
            passes: local_passes,
            shuffle: self.config.within_machine_shuffling,
            seed: ba_cfg.seed ^ (iteration as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        let update = |sub: &mut BaSubmodel, machine: usize, shard: &[usize]| {
            visit_update(sub, machine, shard, x, codes, plan);
        };

        let fault = match self.fault_plan {
            Some((at_iter, fault)) if at_iter == iteration => Some(fault),
            _ => None,
        };

        let (updated, stats) = self.backend.run_w_step(
            &self.cluster,
            submodels,
            ring_epochs,
            params_per_submodel,
            update,
            fault,
        );
        submodels = updated;

        // Reassemble the model from the circulated submodels.
        let mut svms: Vec<Option<LinearSvm>> = vec![None; ba_cfg.n_bits];
        let mut rows: Vec<Option<RidgeRegression>> = vec![None; x.cols()];
        for sub in submodels {
            match sub {
                BaSubmodel::Hash { bit, svm } => svms[bit] = Some(svm),
                BaSubmodel::DecoderRow { out, ridge } => rows[out] = Some(ridge),
            }
        }
        let svms: Vec<LinearSvm> = svms
            .into_iter()
            .map(|s| s.expect("hash submodel returned"))
            .collect();
        let rows: Vec<RidgeRegression> = rows
            .into_iter()
            .map(|r| r.expect("decoder submodel returned"))
            .collect();
        self.model.set_encoder(LinearHash::from_svms(&svms));
        self.model
            .set_decoder(LinearDecoder::from_ridge_rows(&rows));
        stats
    }

    /// One Z step: every machine updates its local coordinates; no
    /// communication. The solves run through the backend (serially on the
    /// simulator, one thread per shard on the threaded backend, stealable
    /// point chunks on the pool backend) and return the changed codes, which
    /// are applied here in topology order — so the result is bitwise
    /// identical across backends. Returns whether any code changed and the
    /// statistics.
    pub fn z_step(&mut self, x: &Mat, mu: f64) -> (bool, ZStepStats) {
        let method = self.config.ba.resolved_z_method();
        let alternations = self.config.ba.z_alternations;
        let model = &self.model;
        let codes = &self.codes;
        // One factorisation for the entire Z step: the decoder and µ are
        // global, so every shard (and every chunk a backend may split a shard
        // into) shares the same read-only `ZStepProblem`.
        let problem = ZStepProblem::new(model.decoder(), mu);
        // Workspace checkout pool: a solve invocation borrows a workspace and
        // returns it afterwards, so at most one workspace is ever built per
        // concurrently-solving worker — not one per chunk — and the per-point
        // kernels allocate nothing regardless of how the backend partitions
        // the work.
        // parking_lot's non-poisoning lock: a panicked solver in one worker
        // must not cascade "workspace pool poisoned" panics into the others
        // (workspaces are checked out whole, so recovery sees a valid pool).
        let workspaces: Mutex<Vec<zstep::ZStepWorkspace>> = Mutex::new(Vec::new());
        let solve = |_machine: usize, chunk: &[usize]| {
            let hx = zstep::encoder_outputs(x, chunk, model.decoder().n_bits(), |row| {
                model.encoder().encode_one(row)
            });
            let mut workspace = workspaces
                .lock()
                .pop()
                .unwrap_or_else(|| zstep::ZStepWorkspace::new(&problem));
            let mut updates = Vec::new();
            zstep::solve_shard_chunk(
                method,
                &problem,
                x,
                chunk,
                &hx,
                alternations,
                &mut workspace,
                |n, z_new| {
                    if !codes.row_equals(n, z_new) {
                        updates.push(ZUpdate {
                            point: n,
                            code: z_new.to_vec(),
                        });
                    }
                },
            );
            workspaces.lock().push(workspace);
            updates
        };
        let (updates, stats) =
            self.backend
                .run_z_step(&self.cluster, self.config.ba.effective_submodels(), solve);
        let changed = !updates.is_empty();
        for update in updates {
            self.codes.set_code(update.point, &update.code);
        }
        (changed, stats)
    }

    /// Consumes the trainer and returns the final model.
    pub fn into_model(self) -> BinaryAutoencoder {
        self.model
    }

    /// Within-machine streaming (§4.3): ingests the data points that were
    /// appended to the feature matrix since training started (rows
    /// `codes.len()..x.rows()`), assigning them to `machine` and initialising
    /// their auxiliary codes with the current encoder. Call between MAC
    /// iterations (conceptually "at the beginning of the Z step").
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer rows than there are codes, or `machine` is out
    /// of range.
    pub fn add_streaming_points(&mut self, x: &Mat, machine: usize) {
        assert!(
            x.rows() >= self.codes.len(),
            "the extended feature matrix must contain all previously seen points"
        );
        let new_indices: Vec<usize> = (self.codes.len()..x.rows()).collect();
        if new_indices.is_empty() {
            return;
        }
        for &n in &new_indices {
            let bits = self.model.encoder().encode_one(x.row(n));
            let code: Vec<f64> = bits
                .into_iter()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect();
            self.codes.push_code(&code);
        }
        self.cluster.add_points_to_shard(machine, &new_indices);
        self.backend
            .publish_point_codes(machine, &new_indices, &self.codes);
    }

    /// Across-machine streaming (§4.3): connects a new machine into the ring
    /// after `after`, pre-loaded with the points appended to the feature
    /// matrix since training started. Returns the new machine's id.
    ///
    /// # Panics
    ///
    /// Panics if `x` has fewer rows than there are codes or `after` is not in
    /// the ring.
    pub fn add_streaming_machine(&mut self, x: &Mat, after: usize) -> usize {
        assert!(
            x.rows() >= self.codes.len(),
            "the extended feature matrix must contain all previously seen points"
        );
        let new_indices: Vec<usize> = (self.codes.len()..x.rows()).collect();
        for &n in &new_indices {
            let bits = self.model.encoder().encode_one(x.row(n));
            let code: Vec<f64> = bits
                .into_iter()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect();
            self.codes.push_code(&code);
        }
        let id = self.cluster.add_machine(after, new_indices.clone(), 1.0);
        self.backend
            .publish_point_codes(id, &new_indices, &self.codes);
        id
    }

    /// Disconnects a machine from the ring (§4.3). Its data is simply no
    /// longer visited; the model keeps training on the remaining shards.
    /// Disconnecting a machine that already left the ring is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if the machine is the last one in the ring.
    pub fn remove_machine(&mut self, machine: usize) {
        self.cluster.remove_machine(machine);
    }
}

/// How one machine visit trains a submodel: `passes` SGD passes (more than
/// one only for the two-round scheme of §4.2), with optional deterministic
/// within-machine shuffling derived from `seed`.
#[derive(Debug, Clone, Copy)]
struct VisitPlan {
    passes: usize,
    shuffle: bool,
    seed: u64,
}

/// One machine visit of one submodel: a pass (or `plan.passes` passes, for
/// the two-round scheme) of minibatch SGD over the machine's shard.
fn visit_update(
    sub: &mut BaSubmodel,
    machine: usize,
    shard: &[usize],
    x: &Mat,
    codes: &BinaryCodes,
    plan: VisitPlan,
) {
    if shard.is_empty() {
        return;
    }
    let VisitPlan {
        passes,
        shuffle,
        seed,
    } = plan;
    // Deterministic per-(visit) shuffling: reproducible regardless of backend
    // thread interleaving.
    let sub_id = match sub {
        BaSubmodel::Hash { bit, .. } => *bit as u64,
        BaSubmodel::DecoderRow { out, .. } => 1000 + *out as u64,
    };
    let mut order: Vec<usize> = shard.to_vec();
    if shuffle {
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (machine as u64).wrapping_mul(0x517c_c1b7_2722_0a95) ^ sub_id,
        );
        order.shuffle(&mut rng);
    }
    match sub {
        BaSubmodel::Hash { bit, svm } => {
            let xs = x.select_rows(&order);
            let targets: Vec<f64> = order
                .iter()
                .map(|&n| if codes.bit(n, *bit) { 1.0 } else { -1.0 })
                .collect();
            svm.fit_batch(&xs, &targets, passes);
        }
        BaSubmodel::DecoderRow { out, ridge } => {
            let mut zs = Mat::zeros(order.len(), codes.n_bits());
            for (row, &n) in order.iter().enumerate() {
                let z = codes.to_f64_row(n);
                zs.set_row(row, &z);
            }
            let targets: Vec<f64> = order.iter().map(|&n| x[(n, *out)]).collect();
            ridge.fit_batch(&zs, &targets, passes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BaConfig;
    use crate::mac::MacTrainer;
    use parmac_cluster::{CostModel, ThreadedBackend};
    use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};

    fn dataset(seed: u64, n: usize) -> Mat {
        gaussian_mixture(&MixtureConfig::new(n, 10, 4).with_seed(seed)).features
    }

    fn quick_ba(bits: usize) -> BaConfig {
        BaConfig::new(bits)
            .with_mu_schedule(0.02, 2.0, 5)
            .with_epochs(1)
            .with_seed(2)
            .with_sgd(parmac_optim::SgdConfig::new().with_eta0(0.1))
    }

    #[test]
    fn parmac_improves_or_preserves_retrieval_quality_on_simulator() {
        // The paper's guarantee (§3.1, §8.2) is about the precision of the
        // returned hash function: with the validation-based bookkeeping the
        // final model is at least as good as the tPCA initialisation. E_BA
        // itself is not monotonic (fig. 7/8), so it is only loosely bounded.
        let data = gaussian_mixture(&MixtureConfig::new(300, 10, 4).with_seed(0));
        let x = data.train_features();
        let eval = crate::mac::RetrievalEval::new(x.clone(), data.query_features(), 10, 5);
        let cfg = ParMacConfig::new(quick_ba(6), 4);
        let mut trainer = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
        let report = trainer.run_with_eval(&x, Some(&eval));
        let init_precision = report.mac.curve.records()[0].precision.unwrap();
        let final_precision = eval.precision_of(trainer.model());
        assert!(
            final_precision >= init_precision - 1e-9,
            "precision {init_precision} -> {final_precision}"
        );
        assert!(report.mac.final_ba_error <= report.mac.initial_ba_error * 1.5);
        assert_eq!(report.w_steps.len(), report.mac.iterations_run);
        assert!(report.total_simulated_time > 0.0);
    }

    #[test]
    fn parmac_threaded_backend_produces_comparable_model() {
        let x = dataset(1, 200);
        let cfg = ParMacConfig::new(quick_ba(6), 4).with_within_machine_shuffling(false);
        let mut sim = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
        let mut thr = ParMacTrainer::new(cfg, &x, ThreadedBackend::new());
        let r_sim = sim.run(&x);
        let r_thr = thr.run(&x);
        // Both backends execute the same protocol; the threaded one may apply
        // updates in a different interleaving across submodels (submodels are
        // independent), so the final errors should be very close.
        let rel = (r_sim.mac.final_ba_error - r_thr.mac.final_ba_error).abs()
            / r_sim.mac.final_ba_error.max(1e-9);
        assert!(
            rel < 0.05,
            "simulated {} vs threaded {}",
            r_sim.mac.final_ba_error,
            r_thr.mac.final_ba_error
        );
    }

    #[test]
    fn parallel_z_step_is_bitwise_identical_to_serial() {
        // The per-point Z solves are independent, so running them one thread
        // per shard must give exactly the same codes as the serial sweep —
        // not just statistically close.
        let x = dataset(13, 200);
        let cfg = ParMacConfig::new(quick_ba(6), 4);
        let mut parallel = ParMacTrainer::new(cfg, &x, ThreadedBackend::new());
        let mut serial = ParMacTrainer::new(cfg, &x, ThreadedBackend::new().with_parallel_z(false));

        parallel.w_step(&x, 0);
        serial.w_step(&x, 0);
        let (changed_par, stats_par) = parallel.z_step(&x, 0.05);
        let (changed_ser, stats_ser) = serial.z_step(&x, 0.05);

        assert_eq!(changed_par, changed_ser);
        assert_eq!(stats_par.points_updated, stats_ser.points_updated);
        assert_eq!(
            parallel.codes().to_matrix(),
            serial.codes().to_matrix(),
            "parallel Z step must be bitwise identical to the serial one"
        );
    }

    #[test]
    fn parallel_z_full_run_matches_serial_z_run_exactly() {
        // Same property over a whole training run: every iteration's Z step
        // applies identical updates, so the final model and codes coincide
        // bit for bit.
        let x = dataset(14, 160);
        let cfg = ParMacConfig::new(quick_ba(5), 4);
        let r_par = ParMacTrainer::new(cfg, &x, ThreadedBackend::new()).run(&x);
        let r_ser =
            ParMacTrainer::new(cfg, &x, ThreadedBackend::new().with_parallel_z(false)).run(&x);
        assert_eq!(r_par.mac.final_ba_error, r_ser.mac.final_ba_error);
        assert_eq!(r_par.mac.iterations_run, r_ser.mac.iterations_run);
    }

    #[test]
    fn parmac_is_close_to_serial_mac() {
        // §6 / §8.2: ParMAC with SGD W steps gives almost identical results to
        // serial MAC.
        let x = dataset(2, 260);
        let ba = quick_ba(6).with_exact_w_step(true);
        let mut serial = MacTrainer::new(ba, &x);
        let serial_report = serial.run(&x);

        // §8.2 / fig. 7: the SGD-trained distributed run approaches the serial
        // exact one as the number of W-step epochs e grows; on a dataset this
        // small (65 points per machine, minibatch 32) e = 8 is needed to give
        // each submodel a meaningful SGD budget per W step.
        let cfg = ParMacConfig::new(quick_ba(6).with_epochs(8), 4);
        let mut distributed =
            ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
        let parmac_report = distributed.run(&x);

        let serial_final = serial_report.final_ba_error;
        let parmac_final = parmac_report.mac.final_ba_error;
        assert!(
            parmac_final <= serial_final * 1.3 + 1e-9,
            "ParMAC E_BA {parmac_final} much worse than serial {serial_final}"
        );
    }

    #[test]
    fn single_machine_parmac_equals_its_own_rerun_deterministically() {
        let x = dataset(3, 150);
        let cfg = ParMacConfig::new(quick_ba(5), 1);
        let backend = SimBackend::new(CostModel::distributed());
        let r1 = ParMacTrainer::new(cfg, &x, backend).run(&x);
        let r2 = ParMacTrainer::new(cfg, &x, backend).run(&x);
        assert_eq!(r1.mac.final_ba_error, r2.mac.final_ba_error);
        assert_eq!(r1.total_simulated_time, r2.total_simulated_time);
    }

    #[test]
    fn simulated_time_decreases_with_more_machines() {
        let x = dataset(4, 320);
        let time_with = |p: usize| {
            let cfg = ParMacConfig::new(quick_ba(6), p);
            let mut t =
                ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::new(1.0, 10.0, 5.0)));
            t.run(&x).total_simulated_time
        };
        let t1 = time_with(1);
        let t8 = time_with(8);
        assert!(t8 < t1, "P=1 {t1} vs P=8 {t8}");
        assert!(t1 / t8 > 3.0, "speedup {}", t1 / t8);
    }

    #[test]
    fn two_round_communication_sends_fewer_messages() {
        let x = dataset(5, 200);
        let cfg_multi = ParMacConfig::new(quick_ba(5).with_epochs(4), 4);
        let cfg_two = cfg_multi.with_two_round_communication(true);
        let backend = SimBackend::new(CostModel::distributed());
        let r_multi = ParMacTrainer::new(cfg_multi, &x, backend).run(&x);
        let r_two = ParMacTrainer::new(cfg_two, &x, backend).run(&x);
        let msgs = |r: &ParMacReport| r.w_steps.iter().map(|w| w.messages_sent).sum::<usize>();
        assert!(
            msgs(&r_two) < msgs(&r_multi),
            "two-round {} vs multi-round {}",
            msgs(&r_two),
            msgs(&r_multi)
        );
    }

    #[test]
    fn fault_injection_still_converges() {
        let x = dataset(6, 240);
        let cfg = ParMacConfig::new(quick_ba(5), 4);
        let mut trainer = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()))
            .with_fault(
                1,
                Fault {
                    machine: 2,
                    at_tick: 1,
                },
            );
        let report = trainer.run(&x);
        assert!(report.mac.final_ba_error <= report.mac.initial_ba_error * 1.1);
    }

    #[test]
    fn cross_machine_shuffling_changes_topology_but_not_correctness() {
        let x = dataset(7, 200);
        let cfg = ParMacConfig::new(quick_ba(5), 4).with_cross_machine_shuffling(true);
        let mut trainer = ParMacTrainer::new(cfg, &x, SimBackend::new(CostModel::distributed()));
        let report = trainer.run(&x);
        // E_BA is not monotone along the penalty path (fig. 7/8); assert that
        // training stayed sane: finite errors and a curve that dips at least
        // once below (or near) the initialisation.
        assert!(report.mac.final_ba_error.is_finite());
        let best = report.mac.curve.best_ba_error().unwrap();
        assert!(best <= report.mac.initial_ba_error * 1.05);
    }

    #[test]
    fn streaming_new_points_into_a_machine_keeps_training() {
        let x_initial = dataset(9, 200);
        let cfg = ParMacConfig::new(quick_ba(5), 4);
        let mut trainer =
            ParMacTrainer::new(cfg, &x_initial, SimBackend::new(CostModel::distributed()));
        // One MAC iteration on the initial data.
        trainer.w_step(&x_initial, 0);
        trainer.z_step(&x_initial, 0.05);

        // New points arrive at machine 2 (same distribution, fresh seed).
        let extra = dataset(10, 40);
        let x_extended = x_initial.vstack(&extra).unwrap();
        trainer.add_streaming_points(&x_extended, 2);
        assert_eq!(trainer.codes().len(), 240);

        // Training continues on the extended data without panicking and the
        // new points now participate in the W and Z steps.
        let stats = trainer.w_step(&x_extended, 1);
        assert!(stats.update_visits > 0);
        let (_, z_stats) = trainer.z_step(&x_extended, 0.1);
        assert_eq!(z_stats.points_updated, 240);
        assert!(trainer.model().ba_error(&x_extended).is_finite());
    }

    #[test]
    fn streaming_machine_addition_and_removal() {
        let x_initial = dataset(11, 160);
        let cfg = ParMacConfig::new(quick_ba(5), 4);
        let mut trainer =
            ParMacTrainer::new(cfg, &x_initial, SimBackend::new(CostModel::distributed()));
        trainer.w_step(&x_initial, 0);
        trainer.z_step(&x_initial, 0.05);

        // A new machine joins with its own freshly collected shard.
        let extra = dataset(12, 40);
        let x_extended = x_initial.vstack(&extra).unwrap();
        let new_id = trainer.add_streaming_machine(&x_extended, 1);
        assert_eq!(new_id, 4);
        assert_eq!(trainer.cluster().topology().n_machines(), 5);

        // And an old machine leaves; training continues on the rest.
        trainer.remove_machine(0);
        assert_eq!(trainer.cluster().topology().n_machines(), 4);
        let stats = trainer.w_step(&x_extended, 1);
        assert!(stats.update_visits > 0);
        let (_, z_stats) = trainer.z_step(&x_extended, 0.1);
        // Machine 0's 40 points are no longer visited: 200 - 40 + 40 new.
        assert_eq!(z_stats.points_updated, 160);
    }

    #[test]
    #[should_panic(expected = "at least one data point per machine")]
    fn more_machines_than_points_rejected() {
        let x = dataset(8, 4);
        let cfg = ParMacConfig::new(quick_ba(4), 8);
        let _ = ParMacTrainer::new(cfg, &x, ThreadedBackend::new());
    }
}
