//! Configuration types for the MAC and ParMAC trainers.

use crate::mu::MuSchedule;
use parmac_optim::SgdConfig;
use serde::{Deserialize, Serialize};

/// How the Z step solves the per-point binary proximal operator (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ZStepMethod {
    /// Exact minimisation by enumerating all `2^L` codes. Only sensible for
    /// small `L` (the paper uses it for SIFT-10K/SIFT-1M with `L = 16`; we cap
    /// it lower by default because enumeration cost is `2^L · L`).
    Enumeration,
    /// Alternating optimisation over bits, initialised from the truncated
    /// relaxed solution (the paper's choice for larger `L`).
    AlternatingBits,
    /// Truncated relaxed solution only (no bit alternation); the cheapest and
    /// least accurate option, provided for the Z-step ablation.
    RelaxedOnly,
    /// Pick [`Enumeration`](ZStepMethod::Enumeration) when `L ≤ 12` and
    /// [`AlternatingBits`](ZStepMethod::AlternatingBits) otherwise.
    Auto,
}

/// Configuration of a binary-autoencoder MAC/ParMAC run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaConfig {
    /// Number of code bits `L` (hash functions).
    pub n_bits: usize,
    /// The µ schedule (one MAC iteration per µ value).
    pub mu_schedule: MuSchedule,
    /// SGD settings for the W-step submodels.
    pub sgd: SgdConfig,
    /// Number of SGD epochs per W step (`e` in the paper). Serial MAC treats
    /// this as the number of passes of its batch solvers where applicable.
    pub epochs: usize,
    /// How to solve the Z step.
    pub z_method: ZStepMethod,
    /// Maximum rounds of alternating-over-bits per point.
    pub z_alternations: usize,
    /// Ridge regularisation used for the exact decoder fit.
    pub decoder_ridge: f64,
    /// Use exact solvers (batch SVM epochs + least-squares decoder) in the
    /// serial W step instead of SGD. ParMAC always uses SGD.
    pub exact_w_step: bool,
    /// Stop a MAC run early when validation precision decreases (§3.1's early
    /// stopping). Only applies when a validation set is supplied.
    pub early_stopping: bool,
    /// RNG seed controlling initialisation and shuffling.
    pub seed: u64,
}

impl BaConfig {
    /// A reasonable default configuration for `n_bits` code bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits == 0`.
    pub fn new(n_bits: usize) -> Self {
        assert!(n_bits > 0, "need at least one code bit");
        BaConfig {
            n_bits,
            mu_schedule: MuSchedule::multiplicative(0.01, 1.5, 10),
            sgd: SgdConfig::new().with_eta0(0.05),
            epochs: 1,
            z_method: ZStepMethod::Auto,
            z_alternations: 5,
            decoder_ridge: 1e-6,
            exact_w_step: false,
            early_stopping: false,
            seed: 0,
        }
    }

    /// Sets the µ schedule from `(µ0, factor, steps)`.
    pub fn with_mu_schedule(mut self, mu0: f64, factor: f64, steps: usize) -> Self {
        self.mu_schedule = MuSchedule::multiplicative(mu0, factor, steps);
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of W-step epochs `e`.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0`.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        self.epochs = epochs;
        self
    }

    /// Sets the Z-step method.
    pub fn with_z_method(mut self, method: ZStepMethod) -> Self {
        self.z_method = method;
        self
    }

    /// Sets the SGD configuration used by the W-step submodels.
    pub fn with_sgd(mut self, sgd: SgdConfig) -> Self {
        self.sgd = sgd;
        self
    }

    /// Uses exact solvers in the serial W step (batch SVM + least squares).
    pub fn with_exact_w_step(mut self, exact: bool) -> Self {
        self.exact_w_step = exact;
        self
    }

    /// Enables early stopping on validation precision.
    pub fn with_early_stopping(mut self, enabled: bool) -> Self {
        self.early_stopping = enabled;
        self
    }

    /// Resolves [`ZStepMethod::Auto`] for this configuration's `L`.
    pub fn resolved_z_method(&self) -> ZStepMethod {
        match self.z_method {
            ZStepMethod::Auto => {
                if self.n_bits <= 12 {
                    ZStepMethod::Enumeration
                } else {
                    ZStepMethod::AlternatingBits
                }
            }
            other => other,
        }
    }

    /// The effective number of equal-size submodels `M = 2L` used by the
    /// speedup analysis (§5.4: the `D` decoders are grouped into `L` bundles of
    /// the same size as one encoder).
    pub fn effective_submodels(&self) -> usize {
        2 * self.n_bits
    }
}

/// Configuration specific to the distributed (ParMAC) trainer, on top of a
/// [`BaConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParMacConfig {
    /// The underlying binary-autoencoder configuration.
    pub ba: BaConfig,
    /// Number of machines `P`.
    pub n_machines: usize,
    /// Shuffle minibatches within each machine at every visit (§4.3).
    pub within_machine_shuffling: bool,
    /// Re-randomise the ring topology at the start of every W step
    /// (cross-machine shuffling, §4.3).
    pub cross_machine_shuffling: bool,
    /// Use the §4.2 scheme: run all `e` epochs within each machine before
    /// passing a submodel on, so only two communication rounds happen per W
    /// step regardless of `e`.
    pub two_round_communication: bool,
    /// Minibatch size used inside each machine visit.
    pub minibatch_size: usize,
}

impl ParMacConfig {
    /// Wraps a [`BaConfig`] for execution on `n_machines` machines.
    ///
    /// # Panics
    ///
    /// Panics if `n_machines == 0`.
    pub fn new(ba: BaConfig, n_machines: usize) -> Self {
        assert!(n_machines > 0, "need at least one machine");
        ParMacConfig {
            ba,
            n_machines,
            within_machine_shuffling: true,
            cross_machine_shuffling: false,
            two_round_communication: false,
            minibatch_size: 32,
        }
    }

    /// Enables or disables within-machine minibatch shuffling.
    pub fn with_within_machine_shuffling(mut self, on: bool) -> Self {
        self.within_machine_shuffling = on;
        self
    }

    /// Enables or disables cross-machine (topology) shuffling.
    pub fn with_cross_machine_shuffling(mut self, on: bool) -> Self {
        self.cross_machine_shuffling = on;
        self
    }

    /// Enables the two-round communication scheme of §4.2.
    pub fn with_two_round_communication(mut self, on: bool) -> Self {
        self.two_round_communication = on;
        self
    }

    /// Sets the within-machine minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn with_minibatch_size(mut self, size: usize) -> Self {
        assert!(size > 0, "minibatch size must be positive");
        self.minibatch_size = size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_z_method_resolves_by_code_length() {
        assert_eq!(
            BaConfig::new(8).resolved_z_method(),
            ZStepMethod::Enumeration
        );
        assert_eq!(
            BaConfig::new(16).resolved_z_method(),
            ZStepMethod::AlternatingBits
        );
        let explicit = BaConfig::new(16).with_z_method(ZStepMethod::Enumeration);
        assert_eq!(explicit.resolved_z_method(), ZStepMethod::Enumeration);
    }

    #[test]
    fn effective_submodels_is_two_l() {
        assert_eq!(BaConfig::new(16).effective_submodels(), 32);
        assert_eq!(BaConfig::new(64).effective_submodels(), 128);
    }

    #[test]
    fn builder_methods_set_fields() {
        let cfg = BaConfig::new(4)
            .with_mu_schedule(0.1, 2.0, 3)
            .with_epochs(2)
            .with_seed(9)
            .with_exact_w_step(true)
            .with_early_stopping(true);
        assert_eq!(cfg.mu_schedule.len(), 3);
        assert_eq!(cfg.epochs, 2);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.exact_w_step);
        assert!(cfg.early_stopping);
    }

    #[test]
    fn parmac_config_defaults() {
        let p = ParMacConfig::new(BaConfig::new(8), 4);
        assert!(p.within_machine_shuffling);
        assert!(!p.cross_machine_shuffling);
        assert!(!p.two_round_communication);
        assert_eq!(p.n_machines, 4);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn rejects_zero_machines() {
        let _ = ParMacConfig::new(BaConfig::new(8), 0);
    }

    #[test]
    #[should_panic(expected = "at least one code bit")]
    fn rejects_zero_bits() {
        let _ = BaConfig::new(0);
    }
}
