//! The Z step: a binary proximal operator per data point.
//!
//! For the binary autoencoder the Z step solves, independently for each point,
//!
//! ```text
//! min_{z ∈ {0,1}^L}  ‖x − f(z)‖² + µ ‖z − h(x)‖²
//! ```
//!
//! (§3.1). Because `z` and `h(x)` are binary, the penalty term is µ times the
//! Hamming distance to the encoder's output. The paper solves this exactly by
//! enumeration for small `L` and approximately for larger `L` by alternating
//! optimisation over bits, initialised from the truncated solution of the
//! relaxed problem over `[0,1]^L` — all three solvers are implemented here.
//!
//! # Kernels and the workspace
//!
//! The Z step dominates each MAC iteration (`N` independent solves per
//! iteration, multiplied by however many shards a backend runs in parallel),
//! so the solver core is built around a reusable [`ZStepWorkspace`] whose hot
//! loops perform **no heap allocation per point**:
//!
//! * exact enumeration walks the `2^L` candidate codes in **Gray-code order**,
//!   maintaining the residual `r = x − f(z)` incrementally so each candidate
//!   costs `O(D)` instead of the `O(L·D)` full decode — an asymptotic `L×`
//!   win (~16× at the paper's `L = 16`);
//! * the alternating sweep computes per-bit flip deltas in place against a
//!   **column-major cached copy** of the decoder weights `Wᵀ` held in the
//!   workspace (the row-major [`Mat`] makes column access strided): one dot
//!   product per decision instead of three `Vec` allocations per bit, with
//!   the residual updated only when a bit actually flips;
//! * the relaxed initialisation has a **batched path**
//!   ([`solve_relaxed_batch`]) that solves the Cholesky system for a whole
//!   shard of right-hand sides with one multi-RHS
//!   [`Cholesky::solve_mat`] call.
//!
//! The contract is **one workspace per shard** (per `(decoder, µ)` problem),
//! passed `&mut` through the backend's solve closure and reused for every
//! point of the shard; on generic real-valued problems the results are
//! bitwise identical to the allocating reference kernels (see the equivalence
//! tests in `tests/zstep_equivalence.rs` — the incremental residual only
//! rounds differently within ULP-level objective ties).

use crate::config::ZStepMethod;
use parmac_hash::LinearDecoder;
use parmac_linalg::cholesky::Cholesky;
use parmac_linalg::vector::{dot, squared_distance};
use parmac_linalg::Mat;

/// Diagonal jitter added to `WᵀW + µI` **only** when the plain factorisation
/// fails (rank-deficient decoder with µ = 0, or µ so small it does not lift
/// the spectrum above the pivot tolerance). For any well-posed problem the
/// relaxed solve factorises exactly the matrix stated in §3.1.
pub const RELAXED_JITTER: f64 = 1e-9;

/// The per-point Z-step problem for a fixed decoder and penalty parameter.
///
/// Construction precomputes the `L × L` factorisation used by the relaxed
/// initialisation, so one `ZStepProblem` should be built per Z step (or per
/// machine shard) and reused for every point.
#[derive(Debug, Clone)]
pub struct ZStepProblem<'a> {
    decoder: &'a LinearDecoder,
    mu: f64,
    /// Cholesky factor of `WᵀW + µI` (with [`RELAXED_JITTER`] added to the
    /// diagonal only if the unjittered factorisation fails; `None` if even the
    /// jittered one does, in which case the solvers fall back to starting from
    /// `h(x)`).
    relaxed_factor: Option<Cholesky>,
}

impl<'a> ZStepProblem<'a> {
    /// Builds the problem for the given decoder and penalty parameter.
    pub fn new(decoder: &'a LinearDecoder, mu: f64) -> Self {
        let l = decoder.n_bits();
        let mut gram = decoder.weights().gram(); // WᵀW, L × L
        for i in 0..l {
            gram[(i, i)] += mu;
        }
        let relaxed_factor = match Cholesky::new(&gram) {
            Ok(factor) => Some(factor),
            Err(_) => {
                // Degenerate decoder: retry with a documented jitter instead
                // of silently regularising every problem instance.
                for i in 0..l {
                    gram[(i, i)] += RELAXED_JITTER;
                }
                Cholesky::new(&gram).ok()
            }
        };
        ZStepProblem {
            decoder,
            mu,
            relaxed_factor,
        }
    }

    /// The decoder `f` in effect.
    pub fn decoder(&self) -> &LinearDecoder {
        self.decoder
    }

    /// The penalty parameter µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The objective `‖x − f(z)‖² + µ·hamming(z, h(x))` for a candidate code
    /// `z` given the data point `x` and its encoder output `hx` (both as 0/1
    /// vectors).
    pub fn objective(&self, x: &[f64], hx: &[f64], z: &[f64]) -> f64 {
        let reconstruction = self.decoder.decode_one(z);
        let hamming: f64 = z
            .iter()
            .zip(hx)
            .map(|(a, b)| if (a > &0.5) == (b > &0.5) { 0.0 } else { 1.0 })
            .sum();
        squared_distance(&reconstruction, x) + self.mu * hamming
    }
}

/// Reusable buffers for the per-point Z-step kernels: build **one per shard**,
/// pass it `&mut` through the solve closure and reuse it for every point, so
/// the hot loop performs zero heap allocations per point.
///
/// The workspace caches a column-major copy of the decoder weights (`Wᵀ`,
/// `L × D`) so the per-bit kernels read contiguous memory; it owns its copies
/// and may outlive the [`ZStepProblem`] it was built from, but must only be
/// used with problems over the **same decoder** it was built from — a decoder
/// with different weights (even of the same shape, e.g. after a W step
/// refitted the model) invalidates the cached `Wᵀ` and column norms, so build
/// a fresh workspace per `(decoder, µ)` problem. Debug builds assert this;
/// release builds only check shapes.
#[derive(Debug, Clone)]
pub struct ZStepWorkspace {
    /// `Wᵀ` (`L × D`): row `l` is decoder weight column `l`, contiguous.
    wt: Mat,
    /// Address of the decoder weight storage the caches were built from, used
    /// to catch same-shape/different-decoder misuse in debug builds.
    decoder_id: usize,
    /// Squared norms `‖w_l‖²` of the decoder weight columns (`L`), used by the
    /// sweep's flip-delta formula.
    col_norms: Vec<f64>,
    /// Residual `r = x − f(z)` maintained by the incremental kernels (`D`).
    residual: Vec<f64>,
    /// The code being optimised (`L`).
    z: Vec<f64>,
    /// The best code found so far / the returned solution (`L`).
    best: Vec<f64>,
    /// Relaxed-path scratch: `x − c` (`D`).
    shifted: Vec<f64>,
    /// Relaxed-path scratch: the right-hand side `Wᵀ(x − c) + µ·h(x)` (`L`).
    rhs: Vec<f64>,
    /// Relaxed-path scratch: forward-substitution intermediate (`L`).
    solve_scratch: Vec<f64>,
    /// The truncated relaxed solution (`L`).
    relaxed: Vec<f64>,
}

impl ZStepWorkspace {
    /// Builds a workspace sized for (and caching `Wᵀ` of) `problem`'s decoder.
    pub fn new(problem: &ZStepProblem<'_>) -> Self {
        let l = problem.decoder.n_bits();
        let d = problem.decoder.dim_out();
        let wt = problem.decoder.weights().transpose();
        let col_norms = (0..l).map(|bit| dot(wt.row(bit), wt.row(bit))).collect();
        ZStepWorkspace {
            wt,
            decoder_id: problem.decoder.weights().as_slice().as_ptr() as usize,
            col_norms,
            residual: vec![0.0; d],
            z: vec![0.0; l],
            best: vec![0.0; l],
            shifted: vec![0.0; d],
            rhs: vec![0.0; l],
            solve_scratch: vec![0.0; l],
            relaxed: vec![0.0; l],
        }
    }

    /// Code length `L` this workspace is sized for.
    pub fn n_bits(&self) -> usize {
        self.wt.rows()
    }

    /// Output dimensionality `D` this workspace is sized for.
    pub fn dim_out(&self) -> usize {
        self.wt.cols()
    }

    fn check_shapes(&self, problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) {
        assert_eq!(
            (self.n_bits(), self.dim_out()),
            (problem.decoder.n_bits(), problem.decoder.dim_out()),
            "workspace was built for a decoder of a different shape"
        );
        debug_assert_eq!(
            self.decoder_id,
            problem.decoder.weights().as_slice().as_ptr() as usize,
            "workspace was built for a different decoder (the cached Wᵀ and \
             column norms are stale); build one workspace per (decoder, µ) \
             problem"
        );
        assert_eq!(x.len(), self.dim_out(), "data point length mismatch");
        assert_eq!(hx.len(), self.n_bits(), "encoder output length mismatch");
    }

    /// Exact enumeration of all `2^L` codes in Gray-code order.
    ///
    /// Consecutive Gray codes differ in exactly one bit, so the residual
    /// `r = x − f(z)` is updated with one `±w_l` column per candidate and each
    /// of the `2^L` candidates costs `O(D)` instead of the `O(L·D)` full
    /// decode. Exact objective ties are broken towards the numerically
    /// smallest code mask, the same convention as the naive ascending
    /// enumeration; because the residual is maintained incrementally its
    /// rounding differs from a fresh decode by ULPs, so codes whose true
    /// objectives are closer than that accumulated error may resolve
    /// differently than under the naive kernel (structured decoders with
    /// exactly duplicated columns, say) — for generic real-valued problems the
    /// results coincide bitwise (see `tests/zstep_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `L > 24` (enumeration would be astronomically slow) or if the
    /// input lengths are inconsistent with the decoder.
    pub fn solve_exact(&mut self, problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> &[f64] {
        let l = problem.decoder.n_bits();
        assert!(l <= 24, "enumeration over 2^{l} codes is not tractable");
        self.check_shapes(problem, x, hx);
        let Self {
            wt, residual, best, ..
        } = self;
        // Start at z = 0: residual is x − c, the Hamming term counts the set
        // bits of h(x) (kept as an exact integer).
        for (r, (xi, ci)) in residual
            .iter_mut()
            .zip(x.iter().zip(problem.decoder.biases()))
        {
            *r = xi - ci;
        }
        let mut mismatches: u32 = hx.iter().filter(|&&h| h > 0.5).count() as u32;
        let mut best_obj =
            residual.iter().map(|v| v * v).sum::<f64>() + problem.mu * f64::from(mismatches);
        let mut best_mask = 0u64;
        let mut mask = 0u64;
        for i in 1u64..(1u64 << l) {
            // The Gray code of i differs from that of i−1 in bit trailing_zeros(i).
            let bit = i.trailing_zeros() as usize;
            mask ^= 1 << bit;
            let set = (mask >> bit) & 1 == 1;
            let w = wt.row(bit);
            let mut sq = 0.0;
            if set {
                for (r, wv) in residual.iter_mut().zip(w) {
                    *r -= wv;
                    sq += *r * *r;
                }
            } else {
                for (r, wv) in residual.iter_mut().zip(w) {
                    *r += wv;
                    sq += *r * *r;
                }
            }
            if set == (hx[bit] > 0.5) {
                mismatches -= 1;
            } else {
                mismatches += 1;
            }
            let obj = sq + problem.mu * f64::from(mismatches);
            if obj < best_obj || (obj == best_obj && mask < best_mask) {
                best_obj = obj;
                best_mask = mask;
            }
        }
        for (bit, zb) in best.iter_mut().enumerate() {
            *zb = if (best_mask >> bit) & 1 == 1 {
                1.0
            } else {
                0.0
            };
        }
        best
    }

    /// The truncated relaxed solution (see [`solve_relaxed`]), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the input lengths are inconsistent with the decoder.
    pub fn solve_relaxed(&mut self, problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> &[f64] {
        self.check_shapes(problem, x, hx);
        self.compute_relaxed(problem, x, hx);
        &self.relaxed
    }

    /// Fills `self.relaxed` with the truncated relaxed solution (or `hx` if
    /// the factorisation is unavailable).
    fn compute_relaxed(&mut self, problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) {
        let Self {
            wt,
            shifted,
            rhs,
            solve_scratch,
            relaxed,
            ..
        } = self;
        let Some(factor) = &problem.relaxed_factor else {
            relaxed.copy_from_slice(hx);
            return;
        };
        for (s, (xi, ci)) in shifted
            .iter_mut()
            .zip(x.iter().zip(problem.decoder.biases()))
        {
            *s = xi - ci;
        }
        // rhs = Wᵀ(x − c) + µ·hx, read off the contiguous rows of Wᵀ.
        for (bit, r) in rhs.iter_mut().enumerate() {
            *r = dot(wt.row(bit), shifted) + problem.mu * hx[bit];
        }
        match factor.solve_into(rhs, solve_scratch, relaxed) {
            Ok(()) => {
                for v in relaxed.iter_mut() {
                    *v = if v.clamp(0.0, 1.0) >= 0.5 { 1.0 } else { 0.0 };
                }
            }
            Err(_) => relaxed.copy_from_slice(hx),
        }
    }

    /// Alternating optimisation over bits from both the truncated relaxed
    /// solution and `h(x)`, keeping the better result (see
    /// [`solve_alternating`]), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the input lengths are inconsistent with the decoder.
    pub fn solve_alternating(
        &mut self,
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        max_rounds: usize,
    ) -> &[f64] {
        self.check_shapes(problem, x, hx);
        self.compute_relaxed(problem, x, hx);
        let relaxed = std::mem::take(&mut self.relaxed);
        self.solve_alternating_from(problem, x, hx, &relaxed, max_rounds);
        self.relaxed = relaxed;
        &self.best
    }

    /// Alternating optimisation with a precomputed initialisation (typically a
    /// row of [`solve_relaxed_batch`]'s output); the `h(x)` start is still
    /// tried and the better of the two results is returned.
    ///
    /// # Panics
    ///
    /// Panics if the input lengths are inconsistent with the decoder.
    pub fn solve_alternating_from(
        &mut self,
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        start: &[f64],
        max_rounds: usize,
    ) -> &[f64] {
        self.check_shapes(problem, x, hx);
        assert_eq!(start.len(), self.n_bits(), "start code length mismatch");
        self.z.copy_from_slice(start);
        let start_obj = self.run_sweeps(problem, x, hx, max_rounds);
        self.best.copy_from_slice(&self.z);
        self.z.copy_from_slice(hx);
        if self.run_sweeps(problem, x, hx, max_rounds) < start_obj {
            self.best.copy_from_slice(&self.z);
        }
        &self.best
    }

    /// Runs up to `max_rounds` bit sweeps from the code currently in `self.z`
    /// and returns the **tracked** objective of the final code: the squared
    /// norm of the maintained residual plus the µ-weighted Hamming distance,
    /// with no re-decode.
    fn run_sweeps(
        &mut self,
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        max_rounds: usize,
    ) -> f64 {
        // residual = x − f(z) for the start code; the sweeps keep it current.
        for (d, r) in self.residual.iter_mut().enumerate() {
            *r = x[d]
                - (dot(problem.decoder.weights().row(d), &self.z) + problem.decoder.biases()[d]);
        }
        for _ in 0..max_rounds.max(1) {
            if !self.sweep_once(problem, hx) {
                break;
            }
        }
        let sq: f64 = self.residual.iter().map(|v| v * v).sum();
        let hamming: f64 = self
            .z
            .iter()
            .zip(hx)
            .map(|(a, b)| if (a > &0.5) == (b > &0.5) { 0.0 } else { 1.0 })
            .sum();
        sq + problem.mu * hamming
    }

    /// One sweep of single-bit updates over `self.z`, maintaining
    /// `self.residual = x − f(z)`; returns whether any bit changed.
    ///
    /// Per bit the flip delta is computed in place against the contiguous
    /// cached `Wᵀ` row: with `r₀` the residual at `z_bit = 0`,
    /// `obj₁ − obj₀ = ‖w‖² − 2·r₀ᵀw + µ·(±1)`, so each decision costs one dot
    /// product and the residual is touched only when the bit actually flips —
    /// no allocation, no candidate-residual materialisation.
    fn sweep_once(&mut self, problem: &ZStepProblem<'_>, hx: &[f64]) -> bool {
        let Self {
            wt,
            col_norms,
            residual,
            z,
            ..
        } = self;
        let l = wt.rows();
        let mut changed = false;
        for bit in 0..l {
            let current = z[bit];
            let w = wt.row(bit);
            let rw = dot(residual, w);
            // r₀ᵀw, with r₀ = residual + current·w the residual at z_bit = 0.
            let r0w = if current > 0.5 {
                rw + col_norms[bit]
            } else {
                rw
            };
            let delta =
                col_norms[bit] - 2.0 * r0w + problem.mu * if hx[bit] > 0.5 { -1.0 } else { 1.0 };
            let new_value = if delta < 0.0 { 1.0 } else { 0.0 };
            if (new_value - current).abs() > 0.5 {
                changed = true;
                z[bit] = new_value;
                if new_value > 0.5 {
                    for (r, wv) in residual.iter_mut().zip(w) {
                        *r -= wv;
                    }
                } else {
                    for (r, wv) in residual.iter_mut().zip(w) {
                        *r += wv;
                    }
                }
            }
        }
        changed
    }

    /// Dispatches to the requested method (cf. the free [`solve`]).
    ///
    /// # Panics
    ///
    /// Panics if called with [`ZStepMethod::Auto`].
    pub fn solve(
        &mut self,
        method: ZStepMethod,
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        max_rounds: usize,
    ) -> &[f64] {
        match method {
            ZStepMethod::Enumeration => self.solve_exact(problem, x, hx),
            ZStepMethod::AlternatingBits => self.solve_alternating(problem, x, hx, max_rounds),
            ZStepMethod::RelaxedOnly => self.solve_relaxed(problem, x, hx),
            ZStepMethod::Auto => panic!("ZStepMethod::Auto must be resolved before calling solve"),
        }
    }
}

/// Batched relaxed initialisation for a whole shard: one multi-RHS Cholesky
/// solve instead of `points.len()` scalar solves.
///
/// `hx` holds the encoder outputs as 0/1 rows aligned with `points` (row `i`
/// is `h(x[points[i]])`). Returns the truncated relaxed solutions in the same
/// layout; each row is bitwise identical to the per-point
/// [`ZStepWorkspace::solve_relaxed`] result. Falls back to the `hx` rows if
/// the factorisation is unavailable.
///
/// # Panics
///
/// Panics if `hx` is not `points.len() × L` or any point index is out of
/// bounds.
pub fn solve_relaxed_batch(problem: &ZStepProblem<'_>, x: &Mat, points: &[usize], hx: &Mat) -> Mat {
    let l = problem.decoder.n_bits();
    assert_eq!(
        hx.shape(),
        (points.len(), l),
        "encoder output matrix must be points × L"
    );
    assert_eq!(
        x.cols(),
        problem.decoder.dim_out(),
        "data dimensionality must match the decoder"
    );
    let Some(factor) = &problem.relaxed_factor else {
        return hx.clone();
    };
    // RHS rows Wᵀ(x_n − c) + µ·h(x_n), accumulated per output dimension over
    // the contiguous decoder weight rows — the same accumulation order as the
    // per-point solve (so bitwise identical), without materialising an n × D
    // shifted copy of the data.
    let w = problem.decoder.weights();
    let mut rhs = Mat::zeros(points.len(), l);
    for (row, &n) in points.iter().enumerate() {
        let rhs_row = rhs.row_mut(row);
        for (out, (xi, ci)) in x.row(n).iter().zip(problem.decoder.biases()).enumerate() {
            let s = xi - ci;
            for (r, wv) in rhs_row.iter_mut().zip(w.row(out)) {
                *r += s * wv;
            }
        }
        for (r, h) in rhs_row.iter_mut().zip(hx.row(row)) {
            *r += problem.mu * h;
        }
    }
    match factor.solve_mat(&rhs.transpose()) {
        Ok(solutions) => {
            // solutions is L × n; truncate and transpose back to n × L.
            let mut out = Mat::zeros(points.len(), l);
            for row in 0..points.len() {
                for bit in 0..l {
                    out[(row, bit)] = if solutions[(bit, row)].clamp(0.0, 1.0) >= 0.5 {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            out
        }
        Err(_) => hx.clone(),
    }
}

/// Builds the encoder-output matrix for a shard: row `i` is
/// `h(x[points[i]])` as 0/1 values, the layout [`solve_relaxed_batch`] and
/// [`solve_shard`] consume.
pub fn encoder_outputs(
    x: &Mat,
    points: &[usize],
    n_bits: usize,
    encode_one: impl Fn(&[f64]) -> Vec<bool>,
) -> Mat {
    let mut hx = Mat::zeros(points.len(), n_bits);
    for (row, &n) in points.iter().enumerate() {
        for (bit, set) in encode_one(x.row(n)).into_iter().enumerate() {
            if set {
                hx[(row, bit)] = 1.0;
            }
        }
    }
    hx
}

/// Solves the Z step for every point of a shard with the requested method,
/// calling `visit(point, z_new)` with each solution in shard order.
///
/// This is the single implementation behind both trainers' Z sweeps (the
/// serial `MacTrainer` passes the whole dataset as one shard; the ParMAC
/// backends call it per machine shard — or per shard *chunk* on the
/// work-stealing pool backend), which is what keeps their results bitwise
/// identical. It builds one [`ZStepWorkspace`] for the shard and delegates to
/// [`solve_shard_chunk`]; callers that solve many chunks (one per stealable
/// pool task) should call the chunked entry point directly with a reused
/// per-worker workspace instead of paying a workspace construction per chunk.
///
/// # Panics
///
/// Panics if `hx` is not `points.len() × L`, any index is out of bounds, or
/// `method` is [`ZStepMethod::Auto`] (resolve it first).
pub fn solve_shard(
    method: ZStepMethod,
    problem: &ZStepProblem<'_>,
    x: &Mat,
    points: &[usize],
    hx: &Mat,
    max_rounds: usize,
    visit: impl FnMut(usize, &[f64]),
) {
    let mut workspace = ZStepWorkspace::new(problem);
    solve_shard_chunk(
        method,
        problem,
        x,
        points,
        hx,
        max_rounds,
        &mut workspace,
        visit,
    );
}

/// The chunked entry point behind [`solve_shard`]: identical semantics, but
/// the caller supplies the [`ZStepWorkspace`], so a worker solving many
/// chunks of one Z step (the pool backend's stealable tasks) builds **one
/// workspace per worker** and reuses it — together with one
/// [`ZStepProblem`] per shard (its Cholesky factor is shared read-only) the
/// per-point kernels still allocate nothing. Because per-point solves are
/// independent and the batched relaxed starts are bitwise identical to the
/// per-point solve row by row, splitting a shard into chunks cannot change
/// any point's solution.
///
/// # Panics
///
/// Panics if `hx` is not `points.len() × L`, any index is out of bounds, the
/// workspace was built for a decoder of a different shape, or `method` is
/// [`ZStepMethod::Auto`] (resolve it first).
#[allow(clippy::too_many_arguments)]
pub fn solve_shard_chunk(
    method: ZStepMethod,
    problem: &ZStepProblem<'_>,
    x: &Mat,
    points: &[usize],
    hx: &Mat,
    max_rounds: usize,
    workspace: &mut ZStepWorkspace,
    mut visit: impl FnMut(usize, &[f64]),
) {
    let starts = match method {
        ZStepMethod::AlternatingBits | ZStepMethod::RelaxedOnly => {
            Some(solve_relaxed_batch(problem, x, points, hx))
        }
        ZStepMethod::Enumeration => None,
        ZStepMethod::Auto => panic!("ZStepMethod::Auto must be resolved before the Z step"),
    };
    for (row, &n) in points.iter().enumerate() {
        let z_new: &[f64] = match method {
            ZStepMethod::Enumeration => workspace.solve_exact(problem, x.row(n), hx.row(row)),
            ZStepMethod::AlternatingBits => workspace.solve_alternating_from(
                problem,
                x.row(n),
                hx.row(row),
                starts
                    .as_ref()
                    .expect("starts computed for this method")
                    .row(row),
                max_rounds,
            ),
            ZStepMethod::RelaxedOnly => starts
                .as_ref()
                .expect("starts computed for this method")
                .row(row),
            ZStepMethod::Auto => unreachable!("rejected above"),
        };
        visit(n, z_new);
    }
}

/// Solves the per-point Z step exactly by enumerating all `2^L` codes.
///
/// One-shot convenience wrapper over [`ZStepWorkspace::solve_exact`]; build a
/// workspace yourself to amortise its buffers over a shard.
///
/// # Panics
///
/// Panics if `L > 24` (enumeration would be astronomically slow) or if the
/// input lengths are inconsistent with the decoder.
pub fn solve_exact(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
    let mut workspace = ZStepWorkspace::new(problem);
    workspace.solve_exact(problem, x, hx).to_vec()
}

/// The truncated relaxed solution: minimise the quadratic relaxation
/// `‖x − f(z)‖² + µ‖z − h(x)‖²` over `z ∈ R^L` by solving
/// `(WᵀW + µI) z = Wᵀ(x − c) + µ·h(x)`, clamp to `[0, 1]` and round to `{0,1}`
/// (§3.1: "initialised by solving the relaxed problem to [0, 1] and truncating
/// its solution").
///
/// One-shot convenience wrapper over [`ZStepWorkspace::solve_relaxed`]; for a
/// whole shard prefer [`solve_relaxed_batch`].
pub fn solve_relaxed(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
    let mut workspace = ZStepWorkspace::new(problem);
    workspace.solve_relaxed(problem, x, hx).to_vec()
}

/// Alternating optimisation over bits, run from both the truncated relaxed
/// solution and from `h(x)`, keeping the better result (§3.1's approximate
/// solver for larger `L`). `max_rounds` bounds the sweeps per start.
///
/// One-shot convenience wrapper over [`ZStepWorkspace::solve_alternating`];
/// build a workspace yourself to amortise its buffers over a shard.
pub fn solve_alternating(
    problem: &ZStepProblem<'_>,
    x: &[f64],
    hx: &[f64],
    max_rounds: usize,
) -> Vec<f64> {
    let mut workspace = ZStepWorkspace::new(problem);
    workspace
        .solve_alternating(problem, x, hx, max_rounds)
        .to_vec()
}

/// Solves the Z step with the requested method. [`ZStepMethod::Auto`] must be
/// resolved by the caller (see
/// [`BaConfig::resolved_z_method`](crate::config::BaConfig::resolved_z_method)).
///
/// # Panics
///
/// Panics if called with [`ZStepMethod::Auto`].
pub fn solve(
    method: ZStepMethod,
    problem: &ZStepProblem<'_>,
    x: &[f64],
    hx: &[f64],
    max_rounds: usize,
) -> Vec<f64> {
    let mut workspace = ZStepWorkspace::new(problem);
    workspace.solve(method, problem, x, hx, max_rounds).to_vec()
}

/// Builds the `hx` (encoder output) vector for one point as 0/1 values; small
/// helper shared by the trainers.
pub fn encoder_output_as_f64(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
}

/// Internal helper kept for completeness of the module's API surface: decodes
/// a relaxed-only problem instance against a dense matrix. Used by tests.
#[doc(hidden)]
pub fn decode_matrix(decoder: &LinearDecoder, z: &Mat) -> Mat {
    let codes = parmac_hash::BinaryCodes::from_matrix(z);
    decoder.decode(&codes)
}

/// The PR-1 reference kernels, kept verbatim as the **single** source of
/// truth for the bitwise-equivalence tests (`tests/zstep_equivalence.rs`) and
/// the before/after micro-benchmarks (`parmac-bench/benches/micro.rs`). Not
/// part of the public API; do not optimise these.
#[doc(hidden)]
pub mod reference {
    use super::ZStepProblem;

    /// Naive exact solver: ascending mask enumeration, one full decode (and
    /// one reconstruction allocation) per candidate.
    pub fn solve_exact(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
        let l = problem.decoder().n_bits();
        let mut best = vec![0.0; l];
        let mut best_obj = f64::INFINITY;
        let mut z = vec![0.0; l];
        for mask in 0u64..(1u64 << l) {
            for (bit, zb) in z.iter_mut().enumerate() {
                *zb = if (mask >> bit) & 1 == 1 { 1.0 } else { 0.0 };
            }
            let obj = problem.objective(x, hx, &z);
            if obj < best_obj {
                best_obj = obj;
                best.copy_from_slice(&z);
            }
        }
        best
    }

    /// PR-1 relaxed solve: per-call `shifted`/`rhs` allocations with strided
    /// column reads, then a scalar Cholesky solve against the problem's
    /// precomputed factor.
    pub fn solve_relaxed(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
        let decoder = problem.decoder();
        let l = decoder.n_bits();
        let Some(factor) = &problem.relaxed_factor else {
            return hx.to_vec();
        };
        let shifted: Vec<f64> = x
            .iter()
            .zip(decoder.biases())
            .map(|(xi, ci)| xi - ci)
            .collect();
        let w = decoder.weights();
        let mut rhs = vec![0.0; l];
        for (bit, r) in rhs.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (out, s) in shifted.iter().enumerate() {
                acc += w[(out, bit)] * s;
            }
            *r = acc + problem.mu() * hx[bit];
        }
        match factor.solve(&rhs) {
            Ok(relaxed) => relaxed
                .into_iter()
                .map(|v| if v.clamp(0.0, 1.0) >= 0.5 { 1.0 } else { 0.0 })
                .collect(),
            Err(_) => hx.to_vec(),
        }
    }

    /// PR-1 alternating solver: both starts, full decode for the residual at
    /// each round and for the final objective.
    pub fn solve_alternating(
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        max_rounds: usize,
    ) -> Vec<f64> {
        let mut best: Option<(f64, Vec<f64>)> = None;
        for start in [solve_relaxed(problem, x, hx), hx.to_vec()] {
            let mut z = start;
            for _ in 0..max_rounds.max(1) {
                if !alternate_bits_once(problem, x, hx, &mut z) {
                    break;
                }
            }
            let obj = problem.objective(x, hx, &z);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, z));
            }
        }
        best.expect("at least one start evaluated").1
    }

    /// PR-1 sweep: three `Vec` allocations per bit against strided decoder
    /// weight columns.
    fn alternate_bits_once(
        problem: &ZStepProblem<'_>,
        x: &[f64],
        hx: &[f64],
        z: &mut [f64],
    ) -> bool {
        let decoder = problem.decoder();
        let l = decoder.n_bits();
        let d = decoder.dim_out();
        let fz = decoder.decode_one(z);
        let mut residual: Vec<f64> = x.iter().zip(&fz).map(|(a, b)| a - b).collect();
        let mut changed = false;
        for bit in 0..l {
            let current = z[bit];
            let w_col: Vec<f64> = (0..d).map(|out| decoder.weights()[(out, bit)]).collect();
            let r0: Vec<f64> = residual
                .iter()
                .zip(&w_col)
                .map(|(r, w)| r + current * w)
                .collect();
            let obj0: f64 = r0.iter().map(|v| v * v).sum::<f64>()
                + problem.mu() * if hx[bit] > 0.5 { 1.0 } else { 0.0 };
            let r1: Vec<f64> = r0.iter().zip(&w_col).map(|(r, w)| r - w).collect();
            let obj1: f64 = r1.iter().map(|v| v * v).sum::<f64>()
                + problem.mu() * if hx[bit] > 0.5 { 0.0 } else { 1.0 };
            let new_value = if obj1 < obj0 { 1.0 } else { 0.0 };
            if (new_value - current).abs() > 0.5 {
                changed = true;
            }
            z[bit] = new_value;
            residual = if new_value > 0.5 { r1 } else { r0 };
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_decoder(l: usize, d: usize, seed: u64) -> LinearDecoder {
        let mut rng = SmallRng::seed_from_u64(seed);
        LinearDecoder::new(
            Mat::random_normal(d, l, &mut rng),
            (0..d).map(|i| i as f64 * 0.01).collect(),
        )
    }

    fn random_point(d: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    fn random_code(l: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..l)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn exact_solver_achieves_the_minimum_over_all_codes() {
        let decoder = random_decoder(6, 4, 0);
        let problem = ZStepProblem::new(&decoder, 0.5);
        let x = random_point(4, 1);
        let hx = random_code(6, 2);
        let z = solve_exact(&problem, &x, &hx);
        let best = problem.objective(&x, &hx, &z);
        // Compare against a brute-force check.
        for mask in 0u64..64 {
            let cand: Vec<f64> = (0..6)
                .map(|b| if (mask >> b) & 1 == 1 { 1.0 } else { 0.0 })
                .collect();
            assert!(problem.objective(&x, &hx, &cand) >= best - 1e-12);
        }
    }

    #[test]
    fn gray_code_enumeration_breaks_ties_towards_the_smallest_mask() {
        // A zero decoder with µ = 0 makes every code optimal; the naive
        // ascending enumeration returns the all-zero code, and so must the
        // Gray-code walk.
        let decoder = LinearDecoder::zeros(3, 4);
        let problem = ZStepProblem::new(&decoder, 0.0);
        let x = vec![1.0, -1.0, 0.5];
        let hx = vec![1.0, 1.0, 0.0, 1.0];
        assert_eq!(solve_exact(&problem, &x, &hx), vec![0.0; 4]);
    }

    #[test]
    fn workspace_is_reusable_across_points_without_state_leakage() {
        let decoder = random_decoder(8, 12, 40);
        let problem = ZStepProblem::new(&decoder, 0.4);
        let mut shared = ZStepWorkspace::new(&problem);
        for seed in 0..8 {
            let x = random_point(12, 700 + seed);
            let hx = random_code(8, 800 + seed);
            let mut fresh = ZStepWorkspace::new(&problem);
            assert_eq!(
                shared.solve_exact(&problem, &x, &hx),
                fresh.solve_exact(&problem, &x, &hx).to_vec()
            );
            assert_eq!(
                shared.solve_alternating(&problem, &x, &hx, 10),
                fresh.solve_alternating(&problem, &x, &hx, 10).to_vec()
            );
            assert_eq!(
                shared.solve_relaxed(&problem, &x, &hx),
                fresh.solve_relaxed(&problem, &x, &hx).to_vec()
            );
        }
    }

    #[test]
    fn batched_relaxed_matches_per_point_relaxed_bitwise() {
        let decoder = random_decoder(7, 9, 41);
        for &mu in &[0.0, 0.05, 1.0] {
            let problem = ZStepProblem::new(&decoder, mu);
            let mut rng = SmallRng::seed_from_u64(900);
            let x = Mat::random_normal(20, 9, &mut rng);
            let points: Vec<usize> = vec![3, 0, 7, 19, 11];
            let mut hx = Mat::zeros(points.len(), 7);
            for row in 0..points.len() {
                let code = random_code(7, 950 + row as u64);
                hx.set_row(row, &code);
            }
            let batch = solve_relaxed_batch(&problem, &x, &points, &hx);
            for (row, &n) in points.iter().enumerate() {
                let single = solve_relaxed(&problem, x.row(n), hx.row(row));
                assert_eq!(batch.row(row), &single[..], "row {row} (µ = {mu})");
            }
        }
    }

    #[test]
    fn alternating_is_never_worse_than_its_initialisations() {
        let decoder = random_decoder(10, 6, 3);
        let problem = ZStepProblem::new(&decoder, 0.2);
        for seed in 0..10 {
            let x = random_point(6, 100 + seed);
            let hx = random_code(10, 200 + seed);
            let relaxed = solve_relaxed(&problem, &x, &hx);
            let alternating = solve_alternating(&problem, &x, &hx, 10);
            assert!(
                problem.objective(&x, &hx, &alternating)
                    <= problem.objective(&x, &hx, &relaxed) + 1e-12
            );
            assert!(
                problem.objective(&x, &hx, &alternating) <= problem.objective(&x, &hx, &hx) + 1e-12
            );
        }
    }

    #[test]
    fn alternating_matches_exact_on_small_problems_most_of_the_time() {
        // D ≥ L, as in every configuration the paper uses (D = 128 or 320,
        // L = 16/64); with D < L the decoder is heavily under-determined and
        // coordinate descent has many equivalent local minima.
        let decoder = random_decoder(8, 16, 4);
        let problem = ZStepProblem::new(&decoder, 0.3);
        let mut matches = 0;
        let trials = 20;
        for seed in 0..trials {
            let x = random_point(16, 300 + seed);
            let hx = random_code(8, 400 + seed);
            let exact = solve_exact(&problem, &x, &hx);
            let approx = solve_alternating(&problem, &x, &hx, 20);
            let gap = problem.objective(&x, &hx, &approx) - problem.objective(&x, &hx, &exact);
            assert!(gap >= -1e-12);
            if gap < 1e-9 {
                matches += 1;
            }
        }
        assert!(
            matches * 2 >= trials,
            "only {matches}/{trials} matched the exact solution"
        );
    }

    #[test]
    fn relaxed_solution_is_reasonable_on_well_conditioned_decoders() {
        // When the decoder columns are near-orthogonal the relaxed-then-round
        // solution should equal the exact one most of the time.
        let decoder = random_decoder(5, 20, 5);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let mut matches = 0;
        for seed in 0..15 {
            let x = random_point(20, 500 + seed);
            let hx = random_code(5, 600 + seed);
            let exact = solve_exact(&problem, &x, &hx);
            let relaxed = solve_relaxed(&problem, &x, &hx);
            if exact == relaxed {
                matches += 1;
            }
        }
        assert!(
            matches >= 8,
            "only {matches}/15 relaxed solutions matched the exact one"
        );
    }

    #[test]
    fn huge_mu_forces_z_to_equal_hx() {
        let decoder = random_decoder(6, 4, 5);
        let problem = ZStepProblem::new(&decoder, 1e9);
        let x = random_point(4, 6);
        let hx = random_code(6, 7);
        assert_eq!(solve_exact(&problem, &x, &hx), hx);
        assert_eq!(solve_alternating(&problem, &x, &hx, 10), hx);
    }

    #[test]
    fn zero_mu_ignores_the_encoder() {
        // With µ = 0 the optimal code depends only on the reconstruction term,
        // so changing h(x) must not change the exact solution.
        let decoder = random_decoder(5, 3, 8);
        let problem = ZStepProblem::new(&decoder, 0.0);
        let x = random_point(3, 9);
        let z1 = solve_exact(&problem, &x, &random_code(5, 10));
        let z2 = solve_exact(&problem, &x, &random_code(5, 11));
        assert_eq!(z1, z2);
    }

    #[test]
    fn zero_mu_relaxed_solve_uses_the_unregularised_gram() {
        // With a full-rank decoder and µ = 0 the relaxed solve must factorise
        // WᵀW itself (no hidden jitter): the relaxed solution of x = f(z*) for
        // a code z* is z* exactly.
        let decoder = random_decoder(4, 12, 30);
        let problem = ZStepProblem::new(&decoder, 0.0);
        let z_star = vec![1.0, 0.0, 1.0, 1.0];
        let x = decoder.decode_one(&z_star);
        let hx = vec![0.0, 1.0, 0.0, 0.0]; // ignored at µ = 0
        assert_eq!(solve_relaxed(&problem, &x, &hx), z_star);
    }

    #[test]
    fn degenerate_decoder_still_factorises_via_jitter() {
        // A decoder with a zero column makes WᵀW singular at µ = 0; the
        // documented jitter fallback must keep the relaxed path available
        // (returning *some* valid binary code rather than falling back to hx).
        let mut weights = Mat::random_normal(6, 4, &mut SmallRng::seed_from_u64(31));
        for out in 0..6 {
            weights[(out, 2)] = 0.0;
        }
        let decoder = LinearDecoder::new(weights, vec![0.0; 6]);
        let problem = ZStepProblem::new(&decoder, 0.0);
        let x = random_point(6, 32);
        let hx = random_code(4, 33);
        let z = solve_relaxed(&problem, &x, &hx);
        assert!(z.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn dispatcher_routes_methods() {
        let decoder = random_decoder(4, 3, 12);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(3, 13);
        let hx = random_code(4, 14);
        let exact = solve(ZStepMethod::Enumeration, &problem, &x, &hx, 5);
        let alt = solve(ZStepMethod::AlternatingBits, &problem, &x, &hx, 5);
        let relaxed = solve(ZStepMethod::RelaxedOnly, &problem, &x, &hx, 5);
        assert!(problem.objective(&x, &hx, &exact) <= problem.objective(&x, &hx, &alt) + 1e-12);
        // The relaxed-only solution may be worse but must still be a valid code.
        assert!(relaxed.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn encoder_output_helper_maps_bools() {
        assert_eq!(
            encoder_output_as_f64(&[true, false, true]),
            vec![1.0, 0.0, 1.0]
        );
    }

    #[test]
    #[should_panic(expected = "must be resolved")]
    fn dispatcher_rejects_auto() {
        let decoder = random_decoder(4, 3, 15);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(3, 16);
        let hx = random_code(4, 17);
        let _ = solve(ZStepMethod::Auto, &problem, &x, &hx, 5);
    }

    #[test]
    #[should_panic(expected = "not tractable")]
    fn exact_rejects_huge_codes() {
        let decoder = random_decoder(25, 2, 18);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(2, 19);
        let hx = random_code(25, 20);
        let _ = solve_exact(&problem, &x, &hx);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn workspace_rejects_mismatched_problem() {
        let decoder_a = random_decoder(4, 3, 22);
        let decoder_b = random_decoder(5, 3, 23);
        let problem_a = ZStepProblem::new(&decoder_a, 0.1);
        let problem_b = ZStepProblem::new(&decoder_b, 0.1);
        let mut workspace = ZStepWorkspace::new(&problem_a);
        let x = random_point(3, 24);
        let hx = random_code(5, 25);
        let _ = workspace.solve_exact(&problem_b, &x, &hx);
    }

    #[test]
    fn decode_matrix_helper_round_trips_shapes() {
        let decoder = random_decoder(3, 4, 21);
        let z = Mat::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 0.0, 0.0]]);
        let out = decode_matrix(&decoder, &z);
        assert_eq!(out.shape(), (2, 4));
    }
}
