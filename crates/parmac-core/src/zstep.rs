//! The Z step: a binary proximal operator per data point.
//!
//! For the binary autoencoder the Z step solves, independently for each point,
//!
//! ```text
//! min_{z ∈ {0,1}^L}  ‖x − f(z)‖² + µ ‖z − h(x)‖²
//! ```
//!
//! (§3.1). Because `z` and `h(x)` are binary, the penalty term is µ times the
//! Hamming distance to the encoder's output. The paper solves this exactly by
//! enumeration for small `L` and approximately for larger `L` by alternating
//! optimisation over bits, initialised from the truncated solution of the
//! relaxed problem over `[0,1]^L` — all three solvers are implemented here.

use crate::config::ZStepMethod;
use parmac_hash::LinearDecoder;
use parmac_linalg::cholesky::Cholesky;
use parmac_linalg::vector::squared_distance;
use parmac_linalg::Mat;

/// The per-point Z-step problem for a fixed decoder and penalty parameter.
///
/// Construction precomputes the `L × L` factorisation used by the relaxed
/// initialisation, so one `ZStepProblem` should be built per Z step (or per
/// machine shard) and reused for every point.
#[derive(Debug, Clone)]
pub struct ZStepProblem<'a> {
    decoder: &'a LinearDecoder,
    mu: f64,
    /// Cholesky factor of `WᵀW + µI` (`None` if the factorisation failed,
    /// which only happens for degenerate decoders; the solvers then fall back
    /// to starting from `h(x)`).
    relaxed_factor: Option<Cholesky>,
}

impl<'a> ZStepProblem<'a> {
    /// Builds the problem for the given decoder and penalty parameter.
    pub fn new(decoder: &'a LinearDecoder, mu: f64) -> Self {
        let l = decoder.n_bits();
        let mut gram = decoder.weights().gram(); // WᵀW, L × L
        for i in 0..l {
            gram[(i, i)] += mu.max(1e-9);
        }
        let relaxed_factor = Cholesky::new(&gram).ok();
        ZStepProblem {
            decoder,
            mu,
            relaxed_factor,
        }
    }

    /// The decoder `f` in effect.
    pub fn decoder(&self) -> &LinearDecoder {
        self.decoder
    }

    /// The penalty parameter µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The objective `‖x − f(z)‖² + µ·hamming(z, h(x))` for a candidate code
    /// `z` given the data point `x` and its encoder output `hx` (both as 0/1
    /// vectors).
    pub fn objective(&self, x: &[f64], hx: &[f64], z: &[f64]) -> f64 {
        let reconstruction = self.decoder.decode_one(z);
        let hamming: f64 = z
            .iter()
            .zip(hx)
            .map(|(a, b)| if (a > &0.5) == (b > &0.5) { 0.0 } else { 1.0 })
            .sum();
        squared_distance(&reconstruction, x) + self.mu * hamming
    }
}

/// Solves the per-point Z step exactly by enumerating all `2^L` codes.
///
/// # Panics
///
/// Panics if `L > 24` (enumeration would be astronomically slow) or if the
/// input lengths are inconsistent with the decoder.
pub fn solve_exact(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
    let l = problem.decoder.n_bits();
    assert!(l <= 24, "enumeration over 2^{l} codes is not tractable");
    assert_eq!(hx.len(), l, "encoder output length mismatch");
    let mut best = vec![0.0; l];
    let mut best_obj = f64::INFINITY;
    let mut z = vec![0.0; l];
    for mask in 0u64..(1u64 << l) {
        for (bit, zb) in z.iter_mut().enumerate() {
            *zb = if (mask >> bit) & 1 == 1 { 1.0 } else { 0.0 };
        }
        let obj = problem.objective(x, hx, &z);
        if obj < best_obj {
            best_obj = obj;
            best.copy_from_slice(&z);
        }
    }
    best
}

/// The truncated relaxed solution: minimise the quadratic relaxation
/// `‖x − f(z)‖² + µ‖z − h(x)‖²` over `z ∈ R^L` by solving
/// `(WᵀW + µI) z = Wᵀ(x − c) + µ·h(x)`, clamp to `[0, 1]` and round to `{0,1}`
/// (§3.1: "initialised by solving the relaxed problem to [0, 1] and truncating
/// its solution").
pub fn solve_relaxed(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64]) -> Vec<f64> {
    let decoder = problem.decoder;
    let l = decoder.n_bits();
    assert_eq!(hx.len(), l, "encoder output length mismatch");
    let Some(factor) = &problem.relaxed_factor else {
        return hx.to_vec();
    };
    // rhs = Wᵀ(x − c) + µ·hx
    let shifted: Vec<f64> = x
        .iter()
        .zip(decoder.biases())
        .map(|(xi, ci)| xi - ci)
        .collect();
    let w = decoder.weights(); // D × L
    let mut rhs = vec![0.0; l];
    for (bit, r) in rhs.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (out, s) in shifted.iter().enumerate() {
            acc += w[(out, bit)] * s;
        }
        *r = acc + problem.mu * hx[bit];
    }
    match factor.solve(&rhs) {
        Ok(relaxed) => relaxed
            .into_iter()
            .map(|v| if v.clamp(0.0, 1.0) >= 0.5 { 1.0 } else { 0.0 })
            .collect(),
        Err(_) => hx.to_vec(),
    }
}

/// Alternating optimisation over bits, run from both the truncated relaxed
/// solution and from `h(x)`, keeping the better result (§3.1's approximate
/// solver for larger `L`). `max_rounds` bounds the sweeps per start.
pub fn solve_alternating(
    problem: &ZStepProblem<'_>,
    x: &[f64],
    hx: &[f64],
    max_rounds: usize,
) -> Vec<f64> {
    let mut best: Option<(f64, Vec<f64>)> = None;
    for start in [solve_relaxed(problem, x, hx), hx.to_vec()] {
        let mut z = start;
        for _ in 0..max_rounds.max(1) {
            let changed = alternate_bits_once(problem, x, hx, &mut z);
            if !changed {
                break;
            }
        }
        let obj = problem.objective(x, hx, &z);
        if best.as_ref().is_none_or(|(b, _)| obj < *b) {
            best = Some((obj, z));
        }
    }
    best.expect("at least one start evaluated").1
}

/// Solves the Z step with the requested method. [`ZStepMethod::Auto`] must be
/// resolved by the caller (see
/// [`BaConfig::resolved_z_method`](crate::config::BaConfig::resolved_z_method)).
///
/// # Panics
///
/// Panics if called with [`ZStepMethod::Auto`].
pub fn solve(
    method: ZStepMethod,
    problem: &ZStepProblem<'_>,
    x: &[f64],
    hx: &[f64],
    max_rounds: usize,
) -> Vec<f64> {
    match method {
        ZStepMethod::Enumeration => solve_exact(problem, x, hx),
        ZStepMethod::AlternatingBits => solve_alternating(problem, x, hx, max_rounds),
        ZStepMethod::RelaxedOnly => solve_relaxed(problem, x, hx),
        ZStepMethod::Auto => panic!("ZStepMethod::Auto must be resolved before calling solve"),
    }
}

/// Builds the `hx` (encoder output) vector for one point as 0/1 values; small
/// helper shared by the trainers.
pub fn encoder_output_as_f64(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
}

/// One sweep of single-bit updates; returns whether any bit changed.
///
/// The sweep maintains the residual `r = x − f(z)` so that flipping bit `l`
/// costs `O(D)` instead of a full decode.
fn alternate_bits_once(problem: &ZStepProblem<'_>, x: &[f64], hx: &[f64], z: &mut [f64]) -> bool {
    let decoder = problem.decoder;
    let l = decoder.n_bits();
    let d = decoder.dim_out();
    // residual r = x − f(z)
    let fz = decoder.decode_one(z);
    let mut residual: Vec<f64> = x.iter().zip(&fz).map(|(a, b)| a - b).collect();
    let mut changed = false;
    for bit in 0..l {
        let current = z[bit];
        let w_col: Vec<f64> = (0..d).map(|out| decoder.weights()[(out, bit)]).collect();
        // Objective difference between z_bit = 1 and z_bit = 0, keeping the
        // other bits fixed. Let r0 be the residual with z_bit = 0.
        let r0: Vec<f64> = residual
            .iter()
            .zip(&w_col)
            .map(|(r, w)| r + current * w)
            .collect();
        let obj0: f64 = r0.iter().map(|v| v * v).sum::<f64>()
            + problem.mu * if hx[bit] > 0.5 { 1.0 } else { 0.0 };
        let r1: Vec<f64> = r0.iter().zip(&w_col).map(|(r, w)| r - w).collect();
        let obj1: f64 = r1.iter().map(|v| v * v).sum::<f64>()
            + problem.mu * if hx[bit] > 0.5 { 0.0 } else { 1.0 };
        let new_value = if obj1 < obj0 { 1.0 } else { 0.0 };
        if (new_value - current).abs() > 0.5 {
            changed = true;
        }
        z[bit] = new_value;
        residual = if new_value > 0.5 { r1 } else { r0 };
    }
    changed
}

/// Internal helper kept for completeness of the module's API surface: decodes
/// a relaxed-only problem instance against a dense matrix. Used by tests.
#[doc(hidden)]
pub fn decode_matrix(decoder: &LinearDecoder, z: &Mat) -> Mat {
    let codes = parmac_hash::BinaryCodes::from_matrix(z);
    decoder.decode(&codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_decoder(l: usize, d: usize, seed: u64) -> LinearDecoder {
        let mut rng = SmallRng::seed_from_u64(seed);
        LinearDecoder::new(
            Mat::random_normal(d, l, &mut rng),
            (0..d).map(|i| i as f64 * 0.01).collect(),
        )
    }

    fn random_point(d: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    fn random_code(l: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..l)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
            .collect()
    }

    #[test]
    fn exact_solver_achieves_the_minimum_over_all_codes() {
        let decoder = random_decoder(6, 4, 0);
        let problem = ZStepProblem::new(&decoder, 0.5);
        let x = random_point(4, 1);
        let hx = random_code(6, 2);
        let z = solve_exact(&problem, &x, &hx);
        let best = problem.objective(&x, &hx, &z);
        // Compare against a brute-force check.
        for mask in 0u64..64 {
            let cand: Vec<f64> = (0..6)
                .map(|b| if (mask >> b) & 1 == 1 { 1.0 } else { 0.0 })
                .collect();
            assert!(problem.objective(&x, &hx, &cand) >= best - 1e-12);
        }
    }

    #[test]
    fn alternating_is_never_worse_than_its_initialisations() {
        let decoder = random_decoder(10, 6, 3);
        let problem = ZStepProblem::new(&decoder, 0.2);
        for seed in 0..10 {
            let x = random_point(6, 100 + seed);
            let hx = random_code(10, 200 + seed);
            let relaxed = solve_relaxed(&problem, &x, &hx);
            let alternating = solve_alternating(&problem, &x, &hx, 10);
            assert!(
                problem.objective(&x, &hx, &alternating)
                    <= problem.objective(&x, &hx, &relaxed) + 1e-12
            );
            assert!(
                problem.objective(&x, &hx, &alternating) <= problem.objective(&x, &hx, &hx) + 1e-12
            );
        }
    }

    #[test]
    fn alternating_matches_exact_on_small_problems_most_of_the_time() {
        // D ≥ L, as in every configuration the paper uses (D = 128 or 320,
        // L = 16/64); with D < L the decoder is heavily under-determined and
        // coordinate descent has many equivalent local minima.
        let decoder = random_decoder(8, 16, 4);
        let problem = ZStepProblem::new(&decoder, 0.3);
        let mut matches = 0;
        let trials = 20;
        for seed in 0..trials {
            let x = random_point(16, 300 + seed);
            let hx = random_code(8, 400 + seed);
            let exact = solve_exact(&problem, &x, &hx);
            let approx = solve_alternating(&problem, &x, &hx, 20);
            let gap = problem.objective(&x, &hx, &approx) - problem.objective(&x, &hx, &exact);
            assert!(gap >= -1e-12);
            if gap < 1e-9 {
                matches += 1;
            }
        }
        assert!(
            matches * 2 >= trials,
            "only {matches}/{trials} matched the exact solution"
        );
    }

    #[test]
    fn relaxed_solution_is_reasonable_on_well_conditioned_decoders() {
        // When the decoder columns are near-orthogonal the relaxed-then-round
        // solution should equal the exact one most of the time.
        let decoder = random_decoder(5, 20, 5);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let mut matches = 0;
        for seed in 0..15 {
            let x = random_point(20, 500 + seed);
            let hx = random_code(5, 600 + seed);
            let exact = solve_exact(&problem, &x, &hx);
            let relaxed = solve_relaxed(&problem, &x, &hx);
            if exact == relaxed {
                matches += 1;
            }
        }
        assert!(
            matches >= 8,
            "only {matches}/15 relaxed solutions matched the exact one"
        );
    }

    #[test]
    fn huge_mu_forces_z_to_equal_hx() {
        let decoder = random_decoder(6, 4, 5);
        let problem = ZStepProblem::new(&decoder, 1e9);
        let x = random_point(4, 6);
        let hx = random_code(6, 7);
        assert_eq!(solve_exact(&problem, &x, &hx), hx);
        assert_eq!(solve_alternating(&problem, &x, &hx, 10), hx);
    }

    #[test]
    fn zero_mu_ignores_the_encoder() {
        // With µ = 0 the optimal code depends only on the reconstruction term,
        // so changing h(x) must not change the exact solution.
        let decoder = random_decoder(5, 3, 8);
        let problem = ZStepProblem::new(&decoder, 0.0);
        let x = random_point(3, 9);
        let z1 = solve_exact(&problem, &x, &random_code(5, 10));
        let z2 = solve_exact(&problem, &x, &random_code(5, 11));
        assert_eq!(z1, z2);
    }

    #[test]
    fn dispatcher_routes_methods() {
        let decoder = random_decoder(4, 3, 12);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(3, 13);
        let hx = random_code(4, 14);
        let exact = solve(ZStepMethod::Enumeration, &problem, &x, &hx, 5);
        let alt = solve(ZStepMethod::AlternatingBits, &problem, &x, &hx, 5);
        let relaxed = solve(ZStepMethod::RelaxedOnly, &problem, &x, &hx, 5);
        assert!(problem.objective(&x, &hx, &exact) <= problem.objective(&x, &hx, &alt) + 1e-12);
        // The relaxed-only solution may be worse but must still be a valid code.
        assert!(relaxed.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn encoder_output_helper_maps_bools() {
        assert_eq!(
            encoder_output_as_f64(&[true, false, true]),
            vec![1.0, 0.0, 1.0]
        );
    }

    #[test]
    #[should_panic(expected = "must be resolved")]
    fn dispatcher_rejects_auto() {
        let decoder = random_decoder(4, 3, 15);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(3, 16);
        let hx = random_code(4, 17);
        let _ = solve(ZStepMethod::Auto, &problem, &x, &hx, 5);
    }

    #[test]
    #[should_panic(expected = "not tractable")]
    fn exact_rejects_huge_codes() {
        let decoder = random_decoder(25, 2, 18);
        let problem = ZStepProblem::new(&decoder, 0.1);
        let x = random_point(2, 19);
        let hx = random_code(25, 20);
        let _ = solve_exact(&problem, &x, &hx);
    }

    #[test]
    fn decode_matrix_helper_round_trips_shapes() {
        let decoder = random_decoder(3, 4, 21);
        let z = Mat::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 0.0, 0.0]]);
        let out = decode_matrix(&decoder, &z);
        assert_eq!(out.shape(), (2, 4));
    }
}
