//! The quadratic-penalty schedule `µ_0 < µ_1 < … `.
//!
//! MAC follows the quadratic-penalty path by increasing µ slowly enough that
//! the binary codes can still change and explore better solutions before the
//! constraints `z_n = h(x_n)` lock in (§3.1). The paper uses a multiplicative
//! schedule `µ_i = µ_0 aⁱ` tuned per dataset (§8.1), which is what
//! [`MuSchedule`] implements.

use serde::{Deserialize, Serialize};

/// A multiplicative penalty-parameter schedule `µ_i = µ_0 · aⁱ`,
/// `i = 0, …, n_steps − 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MuSchedule {
    mu0: f64,
    factor: f64,
    n_steps: usize,
}

impl MuSchedule {
    /// Creates the schedule `µ_0 · aⁱ` with `n_steps` values.
    ///
    /// # Panics
    ///
    /// Panics if `mu0 <= 0`, `factor <= 1`, or `n_steps == 0`.
    pub fn multiplicative(mu0: f64, factor: f64, n_steps: usize) -> Self {
        assert!(mu0 > 0.0, "µ0 must be positive");
        assert!(
            factor > 1.0,
            "the µ factor must be > 1 so the schedule increases"
        );
        assert!(n_steps > 0, "need at least one µ value");
        MuSchedule {
            mu0,
            factor,
            n_steps,
        }
    }

    /// The paper's CIFAR schedule: `µ_0 = 0.005`, `a = 1.2`, 26 values (§8.1).
    pub fn cifar() -> Self {
        MuSchedule::multiplicative(0.005, 1.2, 26)
    }

    /// The paper's SIFT-10K / SIFT-1M schedule: `µ_0 = 10⁻⁶`, `a = 2`, 20
    /// values (§8.1).
    pub fn sift() -> Self {
        MuSchedule::multiplicative(1e-6, 2.0, 20)
    }

    /// The paper's SIFT-1B schedule: `µ_0 = 10⁻⁴`, `a = 2`, 10 values (§8.1).
    pub fn sift1b() -> Self {
        MuSchedule::multiplicative(1e-4, 2.0, 10)
    }

    /// Number of µ values (MAC iterations).
    pub fn len(&self) -> usize {
        self.n_steps
    }

    /// `true` if the schedule is empty (never true for a constructed schedule).
    pub fn is_empty(&self) -> bool {
        self.n_steps == 0
    }

    /// The `i`-th µ value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn value(&self, i: usize) -> f64 {
        assert!(i < self.n_steps, "µ index {i} out of range");
        self.mu0 * self.factor.powi(i as i32)
    }

    /// Iterates over all µ values in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.n_steps).map(move |i| self.value(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_strictly_increasing() {
        let s = MuSchedule::multiplicative(0.01, 1.5, 10);
        let values: Vec<f64> = s.iter().collect();
        assert_eq!(values.len(), 10);
        for w in values.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn values_match_formula() {
        let s = MuSchedule::multiplicative(2.0, 3.0, 4);
        assert_eq!(s.value(0), 2.0);
        assert_eq!(s.value(1), 6.0);
        assert_eq!(s.value(3), 54.0);
    }

    #[test]
    fn paper_presets_have_documented_lengths() {
        assert_eq!(MuSchedule::cifar().len(), 26);
        assert_eq!(MuSchedule::sift().len(), 20);
        assert_eq!(MuSchedule::sift1b().len(), 10);
        assert!((MuSchedule::cifar().value(0) - 0.005).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "µ factor must be > 1")]
    fn rejects_non_increasing_factor() {
        let _ = MuSchedule::multiplicative(0.1, 1.0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_out_of_range_panics() {
        let s = MuSchedule::multiplicative(0.1, 2.0, 3);
        let _ = s.value(3);
    }
}
