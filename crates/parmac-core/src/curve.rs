//! Learning-curve records.
//!
//! The paper's figs. 7–9 and 11 plot `E_Q`, `E_BA` and retrieval precision (or
//! recall) against MAC iteration and against runtime. [`LearningCurve`]
//! collects exactly those series so the experiment harness can print them.

use serde::{Deserialize, Serialize};

/// One MAC/ParMAC iteration's worth of measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// MAC iteration index (one per µ value), 1-based; 0 is the initialisation.
    pub iteration: usize,
    /// The penalty parameter µ in effect (0 for the initialisation record).
    pub mu: f64,
    /// Quadratic-penalty objective `E_Q` (eq. 3).
    pub quadratic_penalty: f64,
    /// Nested objective `E_BA` (eq. 1).
    pub ba_error: f64,
    /// Retrieval precision on the validation/query set, if one was supplied.
    pub precision: Option<f64>,
    /// Cumulative simulated time (cost-model units) since training started.
    pub simulated_time: f64,
    /// Cumulative wall-clock seconds since training started.
    pub wall_clock_secs: f64,
}

/// The sequence of per-iteration records for a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    records: Vec<IterationRecord>,
}

impl LearningCurve {
    /// Creates an empty curve.
    pub fn new() -> Self {
        LearningCurve::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: IterationRecord) {
        self.records.push(record);
    }

    /// All records, in iteration order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records have been pushed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&IterationRecord> {
        self.records.last()
    }

    /// The lowest `E_BA` observed across the curve.
    pub fn best_ba_error(&self) -> Option<f64> {
        self.records
            .iter()
            .map(|r| r.ba_error)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// The highest precision observed across the curve (ignoring records with
    /// no precision).
    pub fn best_precision(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.precision)
            .max_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Renders the curve as tab-separated rows (one per record), with a header
    /// — the format the experiment binaries print.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from("iteration\tmu\tE_Q\tE_BA\tprecision\tsim_time\twall_secs\n");
        for r in &self.records {
            let prec = r
                .precision
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{:.6}\t{:.3}\t{:.3}\t{}\t{:.1}\t{:.3}\n",
                r.iteration,
                r.mu,
                r.quadratic_penalty,
                r.ba_error,
                prec,
                r.simulated_time,
                r.wall_clock_secs
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(iter: usize, eba: f64, prec: Option<f64>) -> IterationRecord {
        IterationRecord {
            iteration: iter,
            mu: 0.1 * iter as f64,
            quadratic_penalty: eba + 1.0,
            ba_error: eba,
            precision: prec,
            simulated_time: iter as f64 * 10.0,
            wall_clock_secs: iter as f64,
        }
    }

    #[test]
    fn push_and_query() {
        let mut curve = LearningCurve::new();
        assert!(curve.is_empty());
        curve.push(record(0, 10.0, None));
        curve.push(record(1, 7.0, Some(0.3)));
        curve.push(record(2, 8.0, Some(0.4)));
        assert_eq!(curve.len(), 3);
        assert_eq!(curve.best_ba_error(), Some(7.0));
        assert_eq!(curve.best_precision(), Some(0.4));
        assert_eq!(curve.last().unwrap().iteration, 2);
    }

    #[test]
    fn tsv_has_header_and_one_row_per_record() {
        let mut curve = LearningCurve::new();
        curve.push(record(0, 1.0, None));
        curve.push(record(1, 0.5, Some(0.25)));
        let tsv = curve.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.lines().next().unwrap().starts_with("iteration"));
        assert!(tsv.contains("0.2500"));
        assert!(tsv.contains('-'));
    }

    #[test]
    fn empty_curve_queries_return_none() {
        let curve = LearningCurve::new();
        assert_eq!(curve.best_ba_error(), None);
        assert_eq!(curve.best_precision(), None);
        assert!(curve.last().is_none());
    }
}
