//! MAC and ParMAC: the paper's primary contribution.
//!
//! The **method of auxiliary coordinates (MAC)** optimises a nested model by
//! introducing one auxiliary coordinate vector per data point, turning the
//! nested objective into a quadratic-penalty objective that is alternated
//! between a **W step** (train the now-independent submodels) and a **Z step**
//! (update the per-point coordinates). **ParMAC** is the distributed execution
//! model: data and coordinates stay on their machine, submodels circulate on a
//! ring and are trained by SGD as they visit each machine's shard.
//!
//! The crate is organised as:
//!
//! * [`ba`] — the binary autoencoder model (`E_BA`, `E_Q`).
//! * [`zstep`] — the binary proximal operator of the Z step (exact enumeration
//!   and alternating-over-bits with a relaxed initialisation).
//! * [`mu`] — the multiplicative penalty schedule `µ_i = µ_0 a^i`.
//! * [`config`] — configuration types shared by the trainers.
//! * [`mac`] — the serial MAC/BA trainer (fig. 1 of the paper).
//! * [`parmac`] — the distributed ParMAC trainer, generic over the
//!   [`ClusterBackend`] execution engine (simulator or threads), with epochs,
//!   shuffling, streaming and fault hooks.
//! * [`nested`] — the general K-layer MAC for deep (sigmoid) nets of §3.2.
//! * [`speedup`] — the theoretical parallel-speedup model of §5 (eqs. 7–22).
//! * [`curve`] — learning-curve records (`E_Q`, `E_BA`, precision vs
//!   iteration/time) used by the experiment harness.
//!
//! # Quick start
//!
//! ```
//! use parmac_core::{BaConfig, MacTrainer};
//! use parmac_data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig::new(300, 16, 4).with_seed(7));
//! let x = data.train_features();
//! let cfg = BaConfig::new(8).with_mu_schedule(0.02, 2.0, 5).with_seed(1);
//! let mut trainer = MacTrainer::new(cfg, &x);
//! let report = trainer.run(&x);
//! assert!(report.final_ba_error <= report.initial_ba_error);
//! ```

#![warn(missing_docs)]

pub mod ba;
pub mod config;
pub mod curve;
pub mod mac;
pub mod mu;
pub mod nested;
pub mod parmac;
pub mod speedup;
pub mod zstep;

pub use ba::BinaryAutoencoder;
pub use config::{BaConfig, ParMacConfig, ZStepMethod};
pub use curve::{IterationRecord, LearningCurve};
pub use mac::{MacReport, MacTrainer};
pub use mu::MuSchedule;
pub use nested::{NestedMac, NestedMacConfig};
pub use parmac::{ParMacReport, ParMacTrainer};
pub use parmac_cluster::{ClusterBackend, PoolBackend, SimBackend, ThreadedBackend};
pub use speedup::SpeedupModel;
