//! Cross-crate integration tests: the full pipeline from synthetic data
//! through MAC/ParMAC training to retrieval evaluation, exercised through the
//! public facade crate exactly as a downstream user would.

use parmac::cluster::{CostModel, Fault};
use parmac::core::mac::RetrievalEval;
use parmac::core::{
    BaConfig, MacTrainer, ParMacConfig, ParMacTrainer, SimBackend, SpeedupModel, ThreadedBackend,
    ZStepMethod,
};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac::hash::TpcaHash;
use parmac::linalg::Mat;

fn dataset(n: usize, dim: usize, seed: u64) -> (Mat, RetrievalEval) {
    let data = gaussian_mixture(&MixtureConfig::new(n, dim, 6).with_seed(seed));
    let train = data.train_features();
    let eval = RetrievalEval::new(train.clone(), data.query_features(), 10, 10);
    (train, eval)
}

fn ba_config(bits: usize, seed: u64) -> BaConfig {
    BaConfig::new(bits)
        .with_mu_schedule(0.01, 2.0, 6)
        .with_seed(seed)
}

#[test]
fn serial_mac_end_to_end_improves_over_tpca_initialisation() {
    let (train, eval) = dataset(500, 24, 0);
    let tpca = TpcaHash::fit(&train, 10).unwrap();
    let tpca_precision = eval.precision_of_hash(&tpca);

    let mut trainer = MacTrainer::new(ba_config(10, 0).with_exact_w_step(true), &train);
    let report = trainer.run_with_eval(&train, Some(&eval));
    let ba_precision = eval.precision_of(trainer.model());

    assert!(report.final_ba_error <= report.initial_ba_error * 1.001);
    assert!(
        ba_precision >= tpca_precision - 0.02,
        "BA {ba_precision} vs tPCA {tpca_precision}"
    );
}

#[test]
fn parmac_simulated_matches_serial_quality() {
    let (train, eval) = dataset(420, 16, 1);

    let mut serial = MacTrainer::new(ba_config(8, 1).with_exact_w_step(true), &train);
    serial.run_with_eval(&train, Some(&eval));
    let serial_precision = eval.precision_of(serial.model());

    let cfg = ParMacConfig::new(ba_config(8, 1).with_epochs(2), 4);
    let mut distributed =
        ParMacTrainer::new(cfg, &train, SimBackend::new(CostModel::distributed()));
    distributed.run_with_eval(&train, Some(&eval));
    let parmac_precision = eval.precision_of(distributed.model());

    // The stochastic, distributed W step should cost little retrieval quality
    // (§8.2: "fewer epochs, even just one, cause only a small degradation").
    assert!(
        parmac_precision >= serial_precision - 0.1,
        "ParMAC {parmac_precision} vs serial {serial_precision}"
    );
}

#[test]
fn parmac_threaded_and_simulated_backends_agree() {
    let (train, _) = dataset(300, 12, 2);
    let cfg = ParMacConfig::new(ba_config(6, 2), 3).with_within_machine_shuffling(false);
    let mut sim = ParMacTrainer::new(cfg, &train, SimBackend::new(CostModel::distributed()));
    let mut thr = ParMacTrainer::new(cfg, &train, ThreadedBackend::new());
    let r_sim = sim.run(&train);
    let r_thr = thr.run(&train);
    // Same protocol, same deterministic update order per submodel → same model.
    let diff = (r_sim.mac.final_ba_error - r_thr.mac.final_ba_error).abs();
    assert!(
        diff / r_sim.mac.final_ba_error.max(1.0) < 1e-9,
        "simulated {} vs threaded {}",
        r_sim.mac.final_ba_error,
        r_thr.mac.final_ba_error
    );
}

#[test]
fn one_epoch_no_shuffling_is_invariant_to_machine_count() {
    // §8.2: without shuffling and with a single epoch, ParMAC's W step visits
    // the data in the same global order regardless of P (up to the starting
    // minibatch of each submodel), so quality should barely depend on P.
    let (train, eval) = dataset(360, 12, 3);
    let mut finals = Vec::new();
    for &p in &[1usize, 2, 4] {
        let cfg = ParMacConfig::new(ba_config(6, 3).with_epochs(1), p)
            .with_within_machine_shuffling(false);
        let mut trainer =
            ParMacTrainer::new(cfg, &train, SimBackend::new(CostModel::distributed()));
        trainer.run_with_eval(&train, Some(&eval));
        finals.push(eval.precision_of(trainer.model()));
    }
    let min = finals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = finals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max - min < 0.15, "precision spread too large: {finals:?}");
}

#[test]
fn fault_injection_mid_training_still_produces_a_usable_model() {
    let (train, eval) = dataset(400, 16, 4);
    let cfg = ParMacConfig::new(ba_config(8, 4), 5);
    let mut trainer = ParMacTrainer::new(cfg, &train, SimBackend::new(CostModel::distributed()))
        .with_fault(
            0,
            Fault {
                machine: 3,
                at_tick: 2,
            },
        );
    let report = trainer.run_with_eval(&train, Some(&eval));
    assert!(report.mac.final_ba_error.is_finite());
    let init_precision = report.mac.curve.records()[0].precision.unwrap();
    let final_precision = eval.precision_of(trainer.model());
    assert!(final_precision >= init_precision - 1e-9);
}

#[test]
fn speedup_model_agrees_with_simulated_cluster_shape() {
    // Fig. 10's claim: the measured (here: simulated-cluster) speedups follow
    // the theoretical curve — near-perfect for P ≤ M, saturating after.
    let (train, _) = dataset(600, 16, 5);
    let bits = 8;
    let cost = CostModel::new(1.0, 50.0, 10.0);
    let runtime = |p: usize| {
        let cfg = ParMacConfig::new(ba_config(bits, 5).with_mu_schedule(0.05, 2.0, 2), p);
        let mut t = ParMacTrainer::new(cfg, &train, SimBackend::new(cost));
        t.run(&train).total_simulated_time
    };
    let t1 = runtime(1);
    let theory = SpeedupModel::new(
        train.rows(),
        2 * bits,
        1,
        cost.w_compute_per_point,
        cost.w_comm_per_submodel,
        cost.z_compute_per_point,
    );
    for &p in &[2usize, 4, 8, 16] {
        let measured = t1 / runtime(p);
        let predicted = theory.speedup(p);
        let ratio = measured / predicted;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "P={p}: measured {measured:.2} vs predicted {predicted:.2}"
        );
    }
}

#[test]
fn z_step_methods_agree_for_small_codes() {
    // From the *same* trained state, one exact-enumeration Z step must reach a
    // quadratic penalty no worse than the alternating-bits approximation, and
    // the two must land close together (the approximation is near-exact for
    // small L, §3.1). Comparing full training runs instead would conflate this
    // with path dependence across iterations.
    let (train, _) = dataset(250, 12, 6);
    let mu = 0.5;
    let base_cfg = ba_config(6, 6).with_exact_w_step(true);
    let mut base = MacTrainer::new(base_cfg, &train);
    base.w_step(&train);

    let penalty_after = |method: ZStepMethod| {
        let cfg = base_cfg.with_z_method(method);
        let mut trainer = MacTrainer::new(cfg, &train);
        trainer.w_step(&train);
        trainer.z_step(&train, mu);
        trainer
            .model()
            .quadratic_penalty(&train, trainer.codes(), mu)
    };
    let exact = penalty_after(ZStepMethod::Enumeration);
    let alternating = penalty_after(ZStepMethod::AlternatingBits);
    assert!(
        exact <= alternating + 1e-9,
        "enumeration {exact} worse than alternating {alternating}"
    );
    assert!(
        (alternating - exact) / exact < 0.10,
        "enumeration {exact} vs alternating {alternating}"
    );
}

#[test]
fn codes_are_consistent_with_encoder_at_convergence() {
    // Run a schedule whose final µ is large: the returned codes must satisfy
    // the constraint Z = h(X) (the MAC stopping condition).
    let (train, _) = dataset(200, 10, 7);
    let cfg = BaConfig::new(5)
        .with_mu_schedule(0.5, 4.0, 8)
        .with_exact_w_step(true)
        .with_seed(7);
    let mut trainer = MacTrainer::new(cfg, &train);
    trainer.run(&train);
    let hx = trainer.model().encode(&train);
    let mismatches = trainer.codes().total_differing_bits(&hx);
    let total_bits = (train.rows() * 5) as u64;
    assert!(
        mismatches * 20 <= total_bits,
        "{mismatches} of {total_bits} bits still violate Z = h(X)"
    );
}
