//! Workspace-level property-based tests on the invariants that tie the crates
//! together: the speedup model's theorems, the ring protocol, binary-code
//! round-trips through encoder/decoder shapes, and partitioning.

use parmac::cluster::{CostModel, RingTopology, SimCluster};
use parmac::core::SpeedupModel;
use parmac::data::{partition_equal, partition_proportional};
use parmac::hash::{BinaryCodes, HashFunction, LinearHash};
use parmac::linalg::Mat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem A.1(3): on divisor points P of M the speedup never decreases.
    #[test]
    fn speedup_monotone_on_divisors(
        m_exp in 1u32..8,
        n in 1000usize..100_000,
        t_wc in 1.0f64..1000.0,
        t_zr in 0.5f64..100.0,
        epochs in 1usize..4,
    ) {
        let m = 1usize << m_exp;
        let model = SpeedupModel::new(n, m, epochs, 1.0, t_wc, t_zr);
        let mut prev = 0.0;
        for p in (0..=m_exp).map(|k| 1usize << k) {
            let s = model.speedup(p);
            prop_assert!(s >= prev - 1e-9, "S({p}) = {s} < {prev}");
            prop_assert!(s <= p as f64 + 1e-9, "S({p}) = {s} exceeds perfect speedup");
            prev = s;
        }
    }

    /// The ring W step visits every (submodel, machine) pair exactly `epochs`
    /// times, for any machine count, submodel count and epoch count.
    #[test]
    fn ring_protocol_visit_counts(
        p in 1usize..7,
        m in 1usize..12,
        epochs in 1usize..4,
    ) {
        let shards = partition_equal(p * 5, p).into_shards();
        let cluster = SimCluster::new(shards, CostModel::distributed());
        let mut visits = vec![vec![0usize; p]; m];
        let mut submodels: Vec<usize> = (0..m).collect();
        cluster.run_w_step(&mut submodels, epochs, 1, |sub, machine, _| {
            visits[*sub][machine] += 1;
        }, None);
        for sub_visits in &visits {
            for &count in sub_visits {
                prop_assert_eq!(count, epochs);
            }
        }
    }

    /// Binary codes survive a matrix round trip and Hamming distance is a
    /// metric (identity, symmetry, triangle inequality).
    #[test]
    fn binary_code_round_trip_and_metric(
        rows in prop::collection::vec(prop::collection::vec(any::<bool>(), 9), 3..6),
    ) {
        let codes = BinaryCodes::from_bools(&rows);
        let round = BinaryCodes::from_matrix(&codes.to_matrix());
        prop_assert_eq!(&codes, &round);
        for i in 0..codes.len() {
            prop_assert_eq!(codes.hamming_within(i, i), 0);
            for j in 0..codes.len() {
                prop_assert_eq!(codes.hamming_within(i, j), codes.hamming_within(j, i));
                for k in 0..codes.len() {
                    prop_assert!(
                        codes.hamming_within(i, k)
                            <= codes.hamming_within(i, j) + codes.hamming_within(j, k)
                    );
                }
            }
        }
    }

    /// Partitions cover every point exactly once, whatever the speeds.
    #[test]
    fn partitions_are_disjoint_covers(
        n in 1usize..500,
        speeds in prop::collection::vec(0.1f64..10.0, 1..8),
    ) {
        for partition in [partition_equal(n, speeds.len()), partition_proportional(n, &speeds)] {
            let mut all: Vec<usize> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all.len(), n);
            all.dedup();
            prop_assert_eq!(all.len(), n);
        }
    }

    /// Following successors around any shuffled ring returns to the start
    /// after exactly P hops, visiting every machine once.
    #[test]
    fn shuffled_rings_are_hamiltonian_cycles(p in 1usize..20, seed in 0u64..1000) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let ring = RingTopology::shuffled(p, &mut rng);
        let start = ring.machines()[0];
        let mut cur = start;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..p {
            prop_assert!(seen.insert(cur));
            cur = ring.successor(cur).expect("ring member has a successor");
        }
        prop_assert_eq!(cur, start);
    }

    /// Hash encoding is deterministic and produces one code per row with the
    /// configured number of bits.
    #[test]
    fn hash_encoding_shapes(
        n in 1usize..30,
        d in 1usize..10,
        bits in 1usize..20,
        seed in 0u64..1000,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let hash = LinearHash::random(bits, d, &mut rng);
        let x = Mat::random_normal(n, d, &mut rng);
        let a = hash.encode(&x);
        let b = hash.encode(&x);
        prop_assert_eq!(a.len(), n);
        prop_assert_eq!(a.n_bits(), bits);
        prop_assert_eq!(a.to_matrix(), b.to_matrix());
    }
}
