//! Binary hashing for approximate image retrieval — the paper's motivating
//! application (§3.1).
//!
//! Trains three hash functions on GIST-like features (truncated PCA, ITQ and a
//! MAC-trained binary autoencoder), indexes a database with each, and compares
//! retrieval precision and the memory footprint of the binary index against
//! the raw floating-point features.
//!
//! Run with `cargo run --release --example image_retrieval`. Pass a path to
//! a real dataset in the TEXMEX layout (`.fvecs` float features or `.bvecs`
//! byte features, e.g. SIFT-10K's `siftsmall_base.fvecs`) to index it instead
//! of the synthetic GIST-like mixture; the last 10% of its vectors (up to
//! 100) are held out as queries. Pass `--probes N` to also search through
//! the multi-probe prefix index with an `N`-bucket probe budget and report
//! its recall against the exact scan.

use parmac::core::mac::RetrievalEval;
use parmac::core::{BaConfig, MacTrainer};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac::data::{read_bvecs, read_fvecs};
use parmac::hash::{Itq, TpcaHash};
use parmac::linalg::Mat;
use parmac::retrieval::PrefixIndex;

/// Loads features from an `.fvecs`/`.bvecs` file (by extension) and splits
/// off a held-out query set: the last 10% of vectors, at most 100.
fn load_real_dataset(path: &str) -> (Mat, Mat) {
    let features = if path.ends_with(".bvecs") {
        read_bvecs(path).expect("read .bvecs file").to_dense()
    } else {
        read_fvecs(path).expect("read .fvecs file")
    };
    let n = features.rows();
    let n_queries = (n / 10).clamp(1, 100);
    assert!(n > n_queries, "dataset too small to split off queries");
    let database = features.select_rows(&(0..n - n_queries).collect::<Vec<_>>());
    let queries = features.select_rows(&(n - n_queries..n).collect::<Vec<_>>());
    (database, queries)
}

/// Splits the command line into an optional dataset path and an optional
/// `--probes N` budget (any order).
fn parse_args() -> (Option<String>, Option<usize>) {
    let mut path = None;
    let mut probes = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--probes" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--probes takes a positive bucket count");
            probes = Some(n);
        } else {
            path = Some(arg);
        }
    }
    (path, probes)
}

fn main() {
    let bits = 16;
    let (dataset_path, probes) = parse_args();
    let (database, queries) = match dataset_path {
        Some(path) => {
            println!("loading real dataset from {path}");
            load_real_dataset(&path)
        }
        None => {
            let data = gaussian_mixture(
                &MixtureConfig::new(2000, 320, 10)
                    .with_intrinsic_dim(24)
                    .with_seed(7),
            );
            (data.train_features(), data.query_features())
        }
    };
    let true_k = (database.rows() / 100).clamp(5, 20);
    let eval = RetrievalEval::new(database.clone(), queries, true_k, true_k);

    println!(
        "database: {} points x {} features",
        database.rows(),
        database.cols(),
    );
    let dense_bytes = database.rows() * database.cols() * std::mem::size_of::<f64>();

    // Baseline 1: truncated PCA hashing.
    let tpca = TpcaHash::fit(&database, bits).expect("tPCA fit");
    let tpca_precision = eval.precision_of_hash(&tpca);

    // Baseline 2: Iterative Quantization.
    let itq = Itq::fit(&database, bits, 30, 7).expect("ITQ fit");
    let itq_precision = eval.precision_of_hash(&itq);

    // Binary autoencoder trained with MAC.
    let config = BaConfig::new(bits)
        .with_mu_schedule(0.005, 1.8, 12)
        .with_exact_w_step(true)
        .with_seed(7);
    let mut trainer = MacTrainer::new(config, &database);
    trainer.run_with_eval(&database, Some(&eval));
    let ba_precision = eval.precision_of(trainer.model());

    let codes = trainer.model().encode(&database);
    println!(
        "\nindex memory: {} bytes as f64 features, {} bytes as {bits}-bit codes ({}x smaller)",
        dense_bytes,
        codes.memory_bytes(),
        dense_bytes / codes.memory_bytes().max(1)
    );

    println!("\nretrieval precision (higher is better):");
    println!("  truncated PCA        {tpca_precision:.3}");
    println!("  ITQ                  {itq_precision:.3}");
    println!("  binary autoencoder   {ba_precision:.3}");

    // Sublinear search: the multi-probe prefix index over the BA codes.
    // Exact mode (no budget) is bitwise identical to the flat scan; a probe
    // budget caps how many buckets each query visits, trading recall for
    // scan work.
    let ids: Vec<usize> = (0..codes.len()).collect();
    let index = PrefixIndex::build(&codes, &ids);
    let query_codes = trainer.model().encode(&eval.queries);
    let exact = index.topk_batched(&query_codes, true_k, None);
    println!(
        "\nprefix index: {}-bit prefix, {} of {} buckets occupied",
        index.prefix_bits(),
        index.occupied_buckets(),
        index.n_buckets()
    );
    if let Some(budget) = probes {
        let budgeted = index.topk_batched(&query_codes, true_k, Some(budget));
        let mut recall = 0.0;
        for (b, e) in budgeted.iter().zip(&exact) {
            if e.is_empty() {
                recall += 1.0;
            } else {
                let hit = e.iter().filter(|pair| b.contains(pair)).count();
                recall += hit as f64 / e.len() as f64;
            }
        }
        recall /= exact.len().max(1) as f64;
        println!(
            "  probe budget {budget}: recall {recall:.3} of the exact top-{true_k} \
             (budget >= {} is exact here)",
            index.occupied_buckets()
        );
    } else {
        println!("  exact multi-probe search (pass --probes N to budget the probes)");
    }
}
