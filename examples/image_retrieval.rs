//! Binary hashing for approximate image retrieval — the paper's motivating
//! application (§3.1).
//!
//! Trains three hash functions on GIST-like features (truncated PCA, ITQ and a
//! MAC-trained binary autoencoder), indexes a database with each, and compares
//! retrieval precision and the memory footprint of the binary index against
//! the raw floating-point features.
//!
//! Run with `cargo run --release --example image_retrieval`. Pass a path to
//! a real dataset in the TEXMEX layout (`.fvecs` float features or `.bvecs`
//! byte features, e.g. SIFT-10K's `siftsmall_base.fvecs`) to index it instead
//! of the synthetic GIST-like mixture; the last 10% of its vectors (up to
//! 100) are held out as queries.

use parmac::core::mac::RetrievalEval;
use parmac::core::{BaConfig, MacTrainer};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac::data::{read_bvecs, read_fvecs};
use parmac::hash::{Itq, TpcaHash};
use parmac::linalg::Mat;

/// Loads features from an `.fvecs`/`.bvecs` file (by extension) and splits
/// off a held-out query set: the last 10% of vectors, at most 100.
fn load_real_dataset(path: &str) -> (Mat, Mat) {
    let features = if path.ends_with(".bvecs") {
        read_bvecs(path).expect("read .bvecs file").to_dense()
    } else {
        read_fvecs(path).expect("read .fvecs file")
    };
    let n = features.rows();
    let n_queries = (n / 10).clamp(1, 100);
    assert!(n > n_queries, "dataset too small to split off queries");
    let database = features.select_rows(&(0..n - n_queries).collect::<Vec<_>>());
    let queries = features.select_rows(&(n - n_queries..n).collect::<Vec<_>>());
    (database, queries)
}

fn main() {
    let bits = 16;
    let (database, queries) = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading real dataset from {path}");
            load_real_dataset(&path)
        }
        None => {
            let data = gaussian_mixture(
                &MixtureConfig::new(2000, 320, 10)
                    .with_intrinsic_dim(24)
                    .with_seed(7),
            );
            (data.train_features(), data.query_features())
        }
    };
    let true_k = (database.rows() / 100).clamp(5, 20);
    let eval = RetrievalEval::new(database.clone(), queries, true_k, true_k);

    println!(
        "database: {} points x {} features",
        database.rows(),
        database.cols(),
    );
    let dense_bytes = database.rows() * database.cols() * std::mem::size_of::<f64>();

    // Baseline 1: truncated PCA hashing.
    let tpca = TpcaHash::fit(&database, bits).expect("tPCA fit");
    let tpca_precision = eval.precision_of_hash(&tpca);

    // Baseline 2: Iterative Quantization.
    let itq = Itq::fit(&database, bits, 30, 7).expect("ITQ fit");
    let itq_precision = eval.precision_of_hash(&itq);

    // Binary autoencoder trained with MAC.
    let config = BaConfig::new(bits)
        .with_mu_schedule(0.005, 1.8, 12)
        .with_exact_w_step(true)
        .with_seed(7);
    let mut trainer = MacTrainer::new(config, &database);
    trainer.run_with_eval(&database, Some(&eval));
    let ba_precision = eval.precision_of(trainer.model());

    let codes = trainer.model().encode(&database);
    println!(
        "\nindex memory: {} bytes as f64 features, {} bytes as {bits}-bit codes ({}x smaller)",
        dense_bytes,
        codes.memory_bytes(),
        dense_bytes / codes.memory_bytes().max(1)
    );

    println!("\nretrieval precision (higher is better):");
    println!("  truncated PCA        {tpca_precision:.3}");
    println!("  ITQ                  {itq_precision:.3}");
    println!("  binary autoencoder   {ba_precision:.3}");
}
