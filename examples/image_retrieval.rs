//! Binary hashing for approximate image retrieval — the paper's motivating
//! application (§3.1).
//!
//! Trains three hash functions on GIST-like features (truncated PCA, ITQ and a
//! MAC-trained binary autoencoder), indexes a database with each, and compares
//! retrieval precision and the memory footprint of the binary index against
//! the raw floating-point features.
//!
//! Run with `cargo run --release --example image_retrieval`.

use parmac::core::mac::RetrievalEval;
use parmac::core::{BaConfig, MacTrainer};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac::hash::{Itq, TpcaHash};

fn main() {
    let bits = 16;
    let data = gaussian_mixture(
        &MixtureConfig::new(2000, 320, 10)
            .with_intrinsic_dim(24)
            .with_seed(7),
    );
    let database = data.train_features();
    let queries = data.query_features();
    let eval = RetrievalEval::new(database.clone(), queries, 20, 20);

    println!(
        "database: {} points x {} GIST-like features",
        database.rows(),
        database.cols()
    );
    let dense_bytes = database.rows() * database.cols() * std::mem::size_of::<f64>();

    // Baseline 1: truncated PCA hashing.
    let tpca = TpcaHash::fit(&database, bits).expect("tPCA fit");
    let tpca_precision = eval.precision_of_hash(&tpca);

    // Baseline 2: Iterative Quantization.
    let itq = Itq::fit(&database, bits, 30, 7).expect("ITQ fit");
    let itq_precision = eval.precision_of_hash(&itq);

    // Binary autoencoder trained with MAC.
    let config = BaConfig::new(bits)
        .with_mu_schedule(0.005, 1.8, 12)
        .with_exact_w_step(true)
        .with_seed(7);
    let mut trainer = MacTrainer::new(config, &database);
    trainer.run_with_eval(&database, Some(&eval));
    let ba_precision = eval.precision_of(trainer.model());

    let codes = trainer.model().encode(&database);
    println!(
        "\nindex memory: {} bytes as f64 features, {} bytes as {bits}-bit codes ({}x smaller)",
        dense_bytes,
        codes.memory_bytes(),
        dense_bytes / codes.memory_bytes().max(1)
    );

    println!("\nretrieval precision (higher is better):");
    println!("  truncated PCA        {tpca_precision:.3}");
    println!("  ITQ                  {itq_precision:.3}");
    println!("  binary autoencoder   {ba_precision:.3}");
}
