//! Quick start: train a binary autoencoder with serial MAC on synthetic data
//! and inspect the learning curve.
//!
//! Run with `cargo run --release --example quickstart`.

use parmac::core::mac::RetrievalEval;
use parmac::core::{BaConfig, MacTrainer};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};

fn main() {
    // A small clustered dataset standing in for image features.
    let data = gaussian_mixture(&MixtureConfig::new(1000, 32, 8).with_seed(42));
    let train = data.train_features();
    let queries = data.query_features();
    println!(
        "dataset: {} training points, {} queries, {} features",
        train.rows(),
        queries.rows(),
        train.cols()
    );

    // Retrieval ground truth for the precision curve.
    let eval = RetrievalEval::new(train.clone(), queries, 10, 10);

    // 16-bit binary autoencoder trained with serial MAC (exact W step).
    let config = BaConfig::new(16)
        .with_mu_schedule(0.01, 2.0, 10)
        .with_exact_w_step(true)
        .with_seed(1);
    let mut trainer = MacTrainer::new(config, &train);
    let report = trainer.run_with_eval(&train, Some(&eval));

    println!("\nlearning curve:\n{}", report.mac_curve_tsv());
    println!(
        "E_BA: {:.1} -> {:.1} over {} iterations",
        report.initial_ba_error, report.final_ba_error, report.iterations_run
    );
    println!(
        "retrieval precision of the trained hash function: {:.3}",
        eval.precision_of(trainer.model())
    );
}

/// Small extension trait so the example prints the curve without repeating the
/// field path; shows how the report types compose.
trait CurveTsv {
    fn mac_curve_tsv(&self) -> String;
}

impl CurveTsv for parmac::core::MacReport {
    fn mac_curve_tsv(&self) -> String {
        self.curve.to_tsv()
    }
}
