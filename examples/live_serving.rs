//! Train and serve from the same processes: ParMAC on the `ServerBackend`,
//! with a query thread retrieving Hamming nearest neighbours from the
//! machines' resident shard codes *while* the W and Z steps run.
//!
//! The machines of the server backend are long-lived actors that each keep
//! their data shard and its binary codes; a `QueryRouter` fans a k-NN query
//! out to every machine and merges the per-shard top-k — the same answer a
//! single-process search over all codes would give, refreshed after every Z
//! step.
//!
//! Run with `cargo run --release --example live_serving`.

use parmac::cluster::{CostModel, ServerBackend};
use parmac::core::{BaConfig, ParMacConfig, ParMacTrainer};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
use parmac::retrieval::hamming_knn;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let data = gaussian_mixture(&MixtureConfig::new(1600, 64, 8).with_seed(23));
    let train = data.train_features();
    let ba = BaConfig::new(12)
        .with_mu_schedule(0.01, 2.0, 8)
        .with_epochs(2)
        .with_seed(23);
    let cfg = ParMacConfig::new(ba, 6);

    // Grab the retrieval front-end *before* the backend moves into the
    // trainer: the router shares the backend's resident machine fleet.
    let backend = ServerBackend::new().with_cost_model(CostModel::distributed());
    let router = backend.query_router();
    let mut trainer = ParMacTrainer::new(cfg, &train, backend);

    // Query with the codes of a few training points (their own neighbourhood
    // should come back) while the trainer is mid-flight.
    let queries = trainer.model().encode(&train.select_rows(&[5, 400, 1111]));
    let done = AtomicBool::new(false);

    let (report, served) = std::thread::scope(|scope| {
        let router = &router;
        let queries = &queries;
        let done = &done;
        let prober = scope.spawn(move || {
            let mut served = 0usize;
            while !done.load(Ordering::Acquire) {
                // Answers are coverage-aware: a healthy fleet reports full
                // coverage, so `expect_full` doubles as a liveness assert.
                let hits = router.knn(queries, 10).expect_full();
                assert_eq!(hits.len(), 3);
                served += 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            served
        });
        let report = trainer.run(&train);
        done.store(true, Ordering::Release);
        (report, prober.join().expect("query thread panicked"))
    });

    println!(
        "trained {} MAC iterations on {} machines: E_BA {:.0} -> {:.0}",
        report.mac.iterations_run,
        trainer.cluster().topology().n_machines(),
        report.mac.initial_ba_error,
        report.mac.final_ba_error,
    );
    println!("served {served} k-NN query batches while training ran");

    // After training, the fleet serves exactly the trainer's final codes.
    let final_queries = trainer.model().encode(&train.select_rows(&[5, 400, 1111]));
    let response = router.knn(&final_queries, 10);
    println!(
        "coverage: {}/{} shards answered",
        response.coverage.shards_answered, response.coverage.shards_total
    );
    let from_fleet = response.expect_full();
    let single_process = hamming_knn(trainer.codes(), &final_queries, 10);
    assert_eq!(from_fleet, single_process);
    println!(
        "post-training check: fleet top-10 == single-process top-10 for {} queries \
         (first neighbours: {:?})",
        from_fleet.len(),
        from_fleet.iter().map(|h| h[0]).collect::<Vec<_>>()
    );
}
