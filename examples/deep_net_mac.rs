//! MAC beyond binary autoencoders: training a small sigmoid network with the
//! K-layer method of auxiliary coordinates of §3.2.
//!
//! Run with `cargo run --release --example deep_net_mac`.

use parmac::core::nested::{NestedMac, NestedMacConfig};
use parmac::linalg::Mat;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A nonlinear regression problem: the target mixes saturating functions of
    // the inputs, which a purely linear model cannot fit.
    let n = 400;
    let mut rng = SmallRng::seed_from_u64(5);
    let x = Mat::random_normal(n, 4, &mut rng);
    let mut y = Mat::zeros(n, 1);
    for i in 0..n {
        let r = x.row(i);
        y[(i, 0)] = (r[0] - 0.5 * r[1]).tanh()
            + 0.8 * (r[2] * r[3]).tanh()
            + 0.05 * rng.gen_range(-1.0..1.0);
    }

    let mut config = NestedMacConfig::new(vec![4, 10, 1]);
    config.iterations = 10;
    config.seed = 5;
    println!(
        "training a {:?} sigmoid net with MAC: {} independent W-step submodels",
        config.layer_sizes,
        config.n_submodels()
    );

    let mut mac = NestedMac::new(config, &x, &y);
    let report = mac.run(&x, &y);
    println!("nested error per MAC iteration:");
    for (i, err) in report.error_per_iteration.iter().enumerate() {
        println!("  iteration {:>2}: {err:.2}", i + 1);
    }
    println!(
        "nested error: {:.2} (random init) -> {:.2} (trained)",
        report.initial_error, report.final_error
    );
}
