//! Fault tolerance and streaming (§4.3): a machine dies mid-W-step, data is
//! added to a machine between iterations, and a new machine joins the ring —
//! and training keeps converging.
//!
//! Run with `cargo run --release --example fault_tolerance_streaming`.

use parmac::cluster::streaming::{add_data, add_machine};
use parmac::cluster::{CostModel, Fault, RingTopology};
use parmac::core::mac::RetrievalEval;
use parmac::core::{BaConfig, ParMacConfig, ParMacTrainer, SimBackend};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};

fn main() {
    let data = gaussian_mixture(&MixtureConfig::new(1200, 64, 8).with_seed(11));
    let train = data.train_features();
    let eval = RetrievalEval::new(train.clone(), data.query_features(), 10, 10);
    let ba = BaConfig::new(12)
        .with_mu_schedule(0.01, 2.0, 6)
        .with_epochs(2)
        .with_seed(11);

    // --- Fault tolerance: machine 2 fails during the second MAC iteration.
    let cfg = ParMacConfig::new(ba, 6);
    let mut faulty = ParMacTrainer::new(cfg, &train, SimBackend::new(CostModel::distributed()))
        .with_fault(
            1,
            Fault {
                machine: 2,
                at_tick: 3,
            },
        );
    let report = faulty.run_with_eval(&train, Some(&eval));
    println!(
        "with a machine failure at iteration 2: E_BA {:.0} -> {:.0}, precision {:.3}",
        report.mac.initial_ba_error,
        report.mac.final_ba_error,
        eval.precision_of(faulty.model())
    );

    // --- Streaming: the same primitives ParMAC uses to add data and machines.
    let mut shards = vec![vec![0usize, 1, 2], vec![3, 4, 5], vec![6, 7, 8]];
    let mut topology = RingTopology::new(3);
    println!(
        "\nstreaming demo on a toy ring of {} machines",
        topology.n_machines()
    );

    // New points collected by machine 1 (within-machine streaming).
    add_data(&mut shards, 1, &[9, 10, 11]);
    println!("machine 1 now owns {} points", shards[1].len());

    // A brand-new machine joins the ring with its own pre-loaded shard.
    let new_id = add_machine(&mut shards, &mut topology, 1, vec![12, 13, 14]);
    println!(
        "machine {new_id} joined after machine 1; ring order is now {:?}",
        topology.machines()
    );

    // And a machine can be removed without touching anyone's data.
    topology.remove_machine(0);
    println!(
        "machine 0 left; ring order is now {:?}",
        topology.machines()
    );
}
