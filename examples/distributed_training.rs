//! Distributed training with ParMAC: the same binary autoencoder trained on
//! 1, 4 and 16 simulated machines, on the real multi-threaded backend, and on
//! the work-stealing pool backend (the paper's shared-memory configuration,
//! §8.5).
//!
//! Demonstrates the properties §4–5 of the paper emphasise: only model
//! parameters are communicated (bytes reported), simulated runtime shrinks
//! nearly linearly while the learned model stays equivalent, and the measured
//! speedup can be compared with the closed-form prediction.
//!
//! Run with `cargo run --release --example distributed_training`.

use parmac::cluster::CostModel;
use parmac::core::mac::RetrievalEval;
use parmac::core::{
    BaConfig, ParMacConfig, ParMacTrainer, PoolBackend, SimBackend, SpeedupModel, ThreadedBackend,
};
use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};

fn main() {
    let bits = 16;
    let data = gaussian_mixture(&MixtureConfig::new(1600, 128, 16).with_seed(3));
    let train = data.train_features();
    let eval = RetrievalEval::new(train.clone(), data.query_features(), 10, 10);

    let ba = BaConfig::new(bits)
        .with_mu_schedule(0.01, 2.0, 6)
        .with_epochs(2)
        .with_seed(3);

    let cost = CostModel::distributed();
    let theory = SpeedupModel::new(
        train.rows(),
        2 * bits,
        ba.epochs,
        cost.w_compute_per_point,
        cost.w_comm_per_submodel,
        cost.z_compute_per_point,
    );

    println!("machines  sim_time   speedup  theory  precision  MB sent");
    let mut t1 = None;
    for &machines in &[1usize, 4, 16] {
        let cfg = ParMacConfig::new(ba, machines);
        let mut trainer = ParMacTrainer::new(cfg, &train, SimBackend::new(cost));
        let report = trainer.run_with_eval(&train, Some(&eval));
        let t = report.total_simulated_time;
        let t1 = *t1.get_or_insert(t);
        let bytes: usize = report.w_steps.iter().map(|w| w.bytes_sent).sum();
        println!(
            "{machines:>8}  {t:>9.0}  {:>7.2}  {:>6.2}  {:>9.3}  {:>7.2}",
            t1 / t,
            theory.speedup(machines),
            eval.precision_of(trainer.model()),
            bytes as f64 / 1e6,
        );
    }

    // The same run on real threads (one per machine): wall-clock parallelism.
    let cfg = ParMacConfig::new(ba, 4);
    let mut threaded = ParMacTrainer::new(cfg, &train, ThreadedBackend::new());
    let report = threaded.run_with_eval(&train, Some(&eval));
    println!(
        "\nthreaded backend (4 OS threads): {:.2}s wall clock, precision {:.3}",
        report.total_wall_clock_secs,
        eval.precision_of(threaded.model())
    );

    // And on the work-stealing pool (§8.5's shared-memory configuration):
    // the Z step is split into stealable point chunks so all workers help
    // with every shard, and submodels queued at one machine train
    // concurrently. The trained model is bitwise identical to the other
    // backends'.
    let mut pool = ParMacTrainer::new(cfg, &train, PoolBackend::new().with_workers(4));
    let report = pool.run_with_eval(&train, Some(&eval));
    println!(
        "pool backend (work-stealing, 4 workers): {:.2}s wall clock, precision {:.3}",
        report.total_wall_clock_secs,
        eval.precision_of(pool.model())
    );
    assert_eq!(
        pool.model().encoder().weights(),
        threaded.model().encoder().weights(),
        "pool and threaded backends must train the identical model"
    );
}
