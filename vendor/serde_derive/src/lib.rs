//! No-op `Serialize`/`Deserialize` derives for the offline serde shim. The
//! shim's traits are blanket-implemented, so the derives emit nothing.

use proc_macro::TokenStream;

/// No-op derive: `serde::Serialize` is blanket-implemented by the shim.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive: `serde::Deserialize` is blanket-implemented by the shim.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
