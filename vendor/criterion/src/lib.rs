//! Minimal offline shim for `criterion`.
//!
//! Supports the `criterion_group!` / `criterion_main!` harness with
//! `bench_function`, `Bencher::iter` and `Bencher::iter_batched`. Each
//! benchmark is auto-calibrated to a ~100 ms measurement window and reports
//! mean ns/iter on stdout — enough to track the perf trajectory without the
//! real crate's statistics. Honours `--bench` (ignored) and substring filters
//! on argv like the real harness, so `cargo bench zstep` works.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost; the shim runs one setup per
/// measured call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Collects timing for one benchmark.
pub struct Bencher {
    /// Total measured duration of the last run.
    elapsed: Duration,
    /// Number of routine invocations measured.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to the measurement
    /// window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count filling the window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(100) || n >= (1 << 30) {
                self.elapsed = elapsed;
                self.iters = n;
                return;
            }
            let target = Duration::from_millis(120);
            let scale = if elapsed.is_zero() {
                16
            } else {
                (target.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            n = n.saturating_mul(scale);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut n: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                hint::black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(100) || n >= (1 << 24) {
                self.elapsed = elapsed;
                self.iters = n;
                return;
            }
            let target = Duration::from_millis(120);
            let scale = if elapsed.is_zero() {
                16
            } else {
                (target.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            n = n.saturating_mul(scale);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional argv entries act as substring filters (cargo bench passes
        // `--bench` and the binary path first).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let ns_per_iter = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "{name:<55} {:>14.1} ns/iter  ({} iters)",
            ns_per_iter, b.iters
        );
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
