//! Minimal offline shim for `proptest`.
//!
//! Provides randomised property testing with the strategy combinators this
//! workspace uses (`Range`/`RangeInclusive` strategies, tuples, `prop_map`,
//! `prop_flat_map`, `prop::collection::vec`, `any::<bool>()`) and the
//! `proptest!` macro. Each test runs `ProptestConfig::cases` random cases
//! seeded from the test name, so failures reproduce across runs. Unlike the
//! real crate there is **no shrinking**: a failing case panics with the
//! assertion message directly.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::Strategy;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a hash of a test name, used to derive a stable per-test seed.
#[doc(hidden)]
pub fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The RNG driving one test case.
#[doc(hidden)]
pub fn test_rng(name_hash: u64, case: u64) -> SmallRng {
    SmallRng::seed_from_u64(name_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Strategy constructors namespaced like the real crate (`prop::collection`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// A strategy for `Vec`s whose elements come from `element` and whose
        /// length is drawn from `size` (a fixed length or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy::new(element, size.into())
        }
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = strategy::AnyBool;
    fn arbitrary() -> Self::Strategy {
        strategy::AnyBool
    }
}

/// Everything a proptest-style test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-style function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let name_hash = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_rng(name_hash, case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}
