//! Strategies: random value generators with `prop_map` / `prop_flat_map`
//! combinators. No shrinking is implemented (see the crate docs).

use rand::rngs::SmallRng;
use rand::Rng;

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// The strategy behind `any::<bool>()`.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// A vector length specification: a fixed size or a range of sizes.
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// See [`crate::prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = SmallRng::seed_from_u64(0);
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
            crate::prop::collection::vec(0.0f64..1.0, r * c).prop_map(move |v| (r, c, v))
        });
        for _ in 0..100 {
            let (r, c, v) = strat.generate(&mut rng);
            assert!(r < 4 && c < 4);
            assert_eq!(v.len(), r * c);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn vec_of_fixed_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let strat = crate::prop::collection::vec(crate::any::<bool>(), 9usize);
        assert_eq!(strat.generate(&mut rng).len(), 9);
    }
}
