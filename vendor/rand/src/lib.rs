//! Minimal offline shim for the `rand` crate.
//!
//! Implements only the surface this workspace uses: a seedable small RNG
//! (xoshiro256++), `gen_range` over the primitive ranges that appear in the
//! code, `gen_bool`, slice shuffling and the `StepRng` mock. The generators
//! are deterministic given a seed, which is all the reproduction needs.

/// A random-number generator: `next_u64` is the primitive everything else is
/// derived from.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling helpers layered on [`RngCore`] (the subset of `rand::Rng` the
/// workspace uses).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive primitive
    /// ranges over integers and floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding support (the subset of `rand::SeedableRng` the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, irrelevant
                // for the small spans used here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32, i8, u8, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, high-quality generator: xoshiro256++ seeded through
    /// SplitMix64 (the same construction the real `SmallRng` family uses).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators for tests.
    pub mod mock {
        use super::RngCore;

        /// A deterministic arithmetic sequence, as in `rand::rngs::mock`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Starts at `initial`, adding `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and random selection on slices (the subset of
    /// `rand::seq::SliceRandom` the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: usize = rng.gen_range(3..=3);
            assert_eq!(m, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0 - 1e-15)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(5, 2);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
