//! Minimal offline shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and config
//! types so they can be exported once the real serde is available, but it
//! never actually serialises anything in-tree. The shim therefore provides
//! blanket-implemented marker traits plus no-op derive macros, keeping every
//! `#[derive(Serialize, Deserialize)]` and trait bound compiling unchanged.

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// The `serde::de` module surface used in bounds.
pub mod de {
    pub use crate::DeserializeOwned;
}
