//! Minimal offline shim for `parking_lot`: a `Mutex` whose `lock()` returns
//! the guard directly, which is the only API the workspace uses.
//!
//! # Poison policy
//!
//! Real `parking_lot` mutexes do not poison — a panic while holding the lock
//! simply releases it. The shim mirrors that: `lock()` recovers from std
//! poisoning via [`std::sync::PoisonError::into_inner`], so one panicked
//! worker cannot cascade `mutex poisoned` panics through every other serving
//! thread. Data protected by these locks must therefore be kept consistent
//! *before* any call that can panic, which is the invariant `parmac-lint`'s
//! `actor-panic` rule enforces upstream.
//!
//! # `check` feature — lock-order cycle detection (loom-lite)
//!
//! With `--features check`, every `Mutex` gets a process-unique id and each
//! acquisition records a `held-lock → acquiring-lock` edge in a global
//! lock-order graph. Before blocking, the would-be edge is checked against
//! the graph: if it closes a cycle (some other thread acquires the same
//! locks in the opposite order), the shim panics with both lock types in the
//! message — turning a once-in-a-blue-moon deadlock into a deterministic
//! test failure. Recursive acquisition of the same mutex on one thread also
//! panics (it would self-deadlock under real `parking_lot`). CI runs the
//! chaos and backend-matrix suites once under this mode.

use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;

#[cfg(feature = "check")]
mod order {
    //! The global lock-order graph and per-thread held-lock stacks.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};

    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

    /// Edges `from → to` with the type names recorded for diagnostics.
    struct Graph {
        edges: HashMap<usize, HashSet<usize>>,
        names: HashMap<usize, &'static str>,
    }

    fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            StdMutex::new(Graph {
                edges: HashMap::new(),
                names: HashMap::new(),
            })
        })
    }

    thread_local! {
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    pub(crate) fn fresh_id() -> usize {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Reachability in the edge set (DFS) — `from` can already reach `to`?
    fn reaches(edges: &HashMap<usize, HashSet<usize>>, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = edges.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Called before blocking on `id`. Panics on recursive acquisition or if
    /// the new `held → id` edge would close a cycle in the global graph.
    pub(crate) fn before_lock(id: usize, type_name: &'static str) {
        let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
        if held.contains(&id) {
            panic!(
                "parking_lot[check]: recursive lock of Mutex<{type_name}> (id {id}) \
                 on one thread — this self-deadlocks under real parking_lot"
            );
        }
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(|p| p.into_inner());
        g.names.entry(id).or_insert(type_name);
        for &h in &held {
            // Adding h → id: a cycle exists iff id already reaches h.
            if reaches(&g.edges, id, h) {
                let held_name = g.names.get(&h).copied().unwrap_or("?");
                panic!(
                    "parking_lot[check]: lock-order cycle — acquiring Mutex<{type_name}> \
                     (id {id}) while holding Mutex<{held_name}> (id {h}), but the global \
                     lock-order graph already orders {id} before {h}; some other code path \
                     takes these locks in the opposite order (potential deadlock)"
                );
            }
            g.edges.entry(h).or_default().insert(id);
        }
    }

    pub(crate) fn after_acquire(id: usize) {
        HELD.with(|h| h.borrow_mut().push(id));
    }

    pub(crate) fn on_release(id: usize) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&x| x == id) {
                held.remove(pos);
            }
        });
    }
}

/// A mutex with `parking_lot`'s infallible, non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    #[cfg(feature = "check")]
    id: std::sync::OnceLock<usize>,
}

/// Guard returned by [`Mutex::lock`]; derefs to the protected value.
pub struct MutexGuard<'a, T> {
    inner: StdMutexGuard<'a, T>,
    #[cfg(feature = "check")]
    id: usize,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
            #[cfg(feature = "check")]
            id: std::sync::OnceLock::new(),
        }
    }

    #[cfg(feature = "check")]
    fn id(&self) -> usize {
        *self.id.get_or_init(order::fresh_id)
    }

    /// Acquires the lock. Recovers the inner value if a previous holder
    /// panicked (real `parking_lot` does not poison). Under `--features
    /// check`, verifies the global lock-acquisition order first.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "check")]
        let id = {
            let id = self.id();
            order::before_lock(id, std::any::type_name::<T>());
            id
        };
        let inner = self.inner.lock().unwrap_or_else(|poisoned| {
            // Poison recovery: adopt parking_lot's semantics — the lock is
            // released by the panicking thread and stays usable.
            poisoned.into_inner()
        });
        #[cfg(feature = "check")]
        order::after_acquire(id);
        MutexGuard {
            inner,
            #[cfg(feature = "check")]
            id,
        }
    }

    /// Consumes the mutex, returning the inner value (poison recovered).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "check")]
        order::on_release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(10));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies while holding the lock");
        })
        .join();
        // A poisoning panic in one thread must not poison everyone else.
        assert_eq!(*m.lock(), 10);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 11);
    }

    #[cfg(feature = "check")]
    mod check_mode {
        use super::Mutex;
        use std::sync::Arc;

        #[test]
        fn consistent_order_is_quiet() {
            let a = Arc::new(Mutex::new(1u32));
            let b = Arc::new(Mutex::new(2u64));
            for _ in 0..3 {
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                std::thread::spawn(move || {
                    let ga = a2.lock();
                    let gb = b2.lock();
                    let _ = (*ga, *gb);
                })
                .join()
                .unwrap();
            }
        }

        #[test]
        #[should_panic(expected = "lock-order cycle")]
        fn reversed_order_panics() {
            // Distinct payload types so the diagnostic names both locks.
            struct First(#[allow(dead_code)] u8);
            struct Second(#[allow(dead_code)] u8);
            let a = Mutex::new(First(0));
            let b = Mutex::new(Second(0));
            {
                let _ga = a.lock();
                let _gb = b.lock(); // records a → b
            }
            let _gb = b.lock();
            let _ga = a.lock(); // b → a closes the cycle: panic
        }

        #[test]
        #[should_panic(expected = "recursive lock")]
        fn recursive_lock_panics() {
            let m = Mutex::new(0i128);
            let _g1 = m.lock();
            let _g2 = m.lock();
        }
    }
}
