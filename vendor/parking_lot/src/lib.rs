//! Minimal offline shim for `parking_lot`: a `Mutex` whose `lock()` returns
//! the guard directly (panicking on poison), which is the only API the
//! workspace's tests use.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// A mutex with `parking_lot`'s infallible `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
