//! Minimal offline shim for `bytes`: a cheaply cloneable, immutable byte
//! buffer (`Arc<[u8]>` underneath) with the small constructor/accessor surface
//! the workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construct_index_clone() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
