//! Minimal offline shim for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Only the unbounded MPSC surface the workspace uses is provided: `unbounded`,
//! cloneable `Sender`, single-consumer `Receiver`, and `Result`-returning
//! `send`/`recv`. The real crate's `Receiver` is additionally cloneable
//! (MPMC); nothing in-tree relies on that.

use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiver is gone. Carries the
/// unsent message like the real crate's error.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// The sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing if the receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner
            .send(msg)
            .map_err(|mpsc::SendError(m)| SendError(m))
    }
}

/// The receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, failing once the channel is empty and
    /// all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Returns immediately with a message if one is ready.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41usize).unwrap());
        std::thread::spawn(move || tx.send(1usize).unwrap());
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
        assert!(rx.recv().is_err(), "all senders dropped");
    }
}
