//! Minimal offline shim for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! Only the MPSC surface the workspace uses is provided: `unbounded` and
//! `bounded` constructors, cloneable `Sender` with `Result`-returning
//! `send`/`try_send`, and a single-consumer `Receiver` with `recv`/`try_recv`.
//! The real crate's `Receiver` is additionally cloneable (MPMC); nothing
//! in-tree relies on that.
//!
//! # `check` feature — channel-misuse detection
//!
//! With `--features check`, every channel gets a process-unique id and each
//! receive call registers the calling thread as the channel's *drainer*. A
//! blocking [`Sender::send`] on a **bounded** channel whose registered
//! drainer is the current thread then panics: at capacity, that send can
//! only be unblocked by the very thread that is blocked in it — a
//! self-deadlock that plain testing misses whenever the queue happens to
//! have room. `try_send` stays exempt (failing with `Full` is the sanctioned
//! way for an actor to enqueue to itself). CI runs the chaos and
//! backend-matrix suites once under this mode.

use std::sync::mpsc;

#[cfg(feature = "check")]
mod misuse {
    //! Registry mapping channel id → the thread last seen draining it.

    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};
    use std::thread::ThreadId;

    static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

    fn drainers() -> &'static StdMutex<HashMap<usize, ThreadId>> {
        static DRAINERS: OnceLock<StdMutex<HashMap<usize, ThreadId>>> = OnceLock::new();
        DRAINERS.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    pub(crate) fn fresh_id() -> usize {
        NEXT_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// Records the current thread as `id`'s drainer (called on every recv).
    pub(crate) fn note_drainer(id: usize) {
        let me = std::thread::current().id();
        let mut map = drainers().lock().unwrap_or_else(|p| p.into_inner());
        map.insert(id, me);
    }

    /// Panics if the current thread is the registered drainer of `id` —
    /// called before a blocking send on a bounded channel.
    pub(crate) fn check_blocking_send(id: usize) {
        let me = std::thread::current().id();
        let map = drainers().lock().unwrap_or_else(|p| p.into_inner());
        if map.get(&id) == Some(&me) {
            panic!(
                "crossbeam-channel[check]: blocking send on bounded channel {id} from its \
                 own drainer thread {me:?} — at capacity this self-deadlocks (only the \
                 blocked thread could free space); use try_send and handle Full instead"
            );
        }
    }
}

/// Error returned by [`Sender::send`] when the receiver is gone. Carries the
/// unsent message like the real crate's error.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`]: the channel is at capacity, or the
/// receiver is gone. Carries the unsent message like the real crate's error.
pub enum TrySendError<T> {
    /// A bounded channel is at capacity.
    Full(T),
    /// The receiver has been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Returns `true` for the at-capacity case.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
        }
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::recv_timeout`]: the deadline passed, or the
/// channel is empty with every sender gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl RecvTimeoutError {
    /// Returns `true` for the deadline-passed case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, RecvTimeoutError::Timeout)
    }
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

#[derive(Debug)]
enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half of a channel.
#[derive(Debug)]
pub struct Sender<T> {
    inner: SenderInner<T>,
    #[cfg(feature = "check")]
    id: usize,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: match &self.inner {
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
            },
            #[cfg(feature = "check")]
            id: self.id,
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, failing if the receiver has been dropped. On a
    /// bounded channel at capacity this blocks until space frees up
    /// (backpressure). Under `--features check`, a blocking send to a
    /// bounded channel drained by the *current* thread panics (self-deadlock
    /// shape) — use [`try_send`](Self::try_send) there instead.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderInner::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            SenderInner::Bounded(tx) => {
                #[cfg(feature = "check")]
                misuse::check_blocking_send(self.id);
                tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
            }
        }
    }

    /// Sends without blocking: fails with [`TrySendError::Full`] if a bounded
    /// channel is at capacity (the load-shedding primitive) and
    /// [`TrySendError::Disconnected`] if the receiver is gone. On an
    /// unbounded channel, equivalent to [`send`](Self::send).
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        match &self.inner {
            SenderInner::Unbounded(tx) => tx
                .send(msg)
                .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
            SenderInner::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            }),
        }
    }
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
    #[cfg(feature = "check")]
    id: usize,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, failing once the channel is empty and
    /// all senders are dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(feature = "check")]
        misuse::note_drainer(self.id);
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Blocks until a message arrives or `timeout` elapses. Fails with
    /// [`RecvTimeoutError::Disconnected`] once the channel is empty and all
    /// senders are dropped — the primitive behind bounded failover waits
    /// (a wedged peer costs at most `timeout`, never a hang).
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        #[cfg(feature = "check")]
        misuse::note_drainer(self.id);
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Returns immediately with a message if one is ready.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        #[cfg(feature = "check")]
        misuse::note_drainer(self.id);
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was ready.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    #[cfg(feature = "check")]
    let id = misuse::fresh_id();
    (
        Sender {
            inner: SenderInner::Unbounded(tx),
            #[cfg(feature = "check")]
            id,
        },
        Receiver {
            inner: rx,
            #[cfg(feature = "check")]
            id,
        },
    )
}

/// Creates a bounded channel holding at most `cap` queued messages. `send`
/// blocks when full; `try_send` fails with [`TrySendError::Full`] instead.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    #[cfg(feature = "check")]
    let id = misuse::fresh_id();
    (
        Sender {
            inner: SenderInner::Bounded(tx),
            #[cfg(feature = "check")]
            id,
        },
        Receiver {
            inner: rx,
            #[cfg(feature = "check")]
            id,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(41usize).unwrap());
        std::thread::spawn(move || tx.send(1usize).unwrap());
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
        assert!(rx.recv().is_err(), "all senders dropped");
    }

    #[test]
    fn bounded_try_send_sheds_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.try_send(1usize).unwrap();
        tx.try_send(2usize).unwrap();
        let err = tx.try_send(3usize).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv().unwrap(), 1);
        // Space freed: the next try_send succeeds.
        tx.try_send(4usize).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 4);
    }

    #[test]
    fn recv_timeout_times_out_and_sees_disconnection() {
        use std::time::{Duration, Instant};
        let (tx, rx) = unbounded::<usize>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        drop(tx);
        let err = rx.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
        assert!(!err.is_timeout());
    }

    #[cfg(feature = "check")]
    mod check_mode {
        use super::super::*;

        #[test]
        #[should_panic(expected = "own drainer thread")]
        fn blocking_send_to_own_mailbox_panics() {
            let (tx, rx) = bounded(1);
            // Register this thread as the channel's drainer, the way an
            // actor loop would.
            let _ = rx.try_recv();
            // An actor blocking-sending to its own bounded mailbox would
            // self-deadlock at capacity: check mode fails it immediately.
            tx.send(1u32).unwrap();
        }

        #[test]
        fn try_send_to_own_mailbox_is_sanctioned() {
            let (tx, rx) = bounded(1);
            let _ = rx.try_recv();
            tx.try_send(1u32).unwrap();
            assert!(tx.try_send(2u32).unwrap_err().is_full());
            assert_eq!(rx.recv().unwrap(), 1);
        }

        #[test]
        fn send_from_another_thread_is_quiet() {
            let (tx, rx) = bounded(4);
            let _ = rx.try_recv();
            std::thread::spawn(move || tx.send(7u32).unwrap())
                .join()
                .unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }
    }

    #[test]
    fn try_send_reports_disconnection() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(matches!(
            tx.try_send(7usize),
            Err(TrySendError::Disconnected(7))
        ));
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(matches!(
            tx.try_send(7usize),
            Err(TrySendError::Disconnected(7))
        ));
    }
}
