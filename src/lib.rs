//! # parmac
//!
//! Facade crate for the ParMAC reproduction (Carreira-Perpiñán & Alizadeh,
//! *"ParMAC: distributed optimisation of nested functions, with application to
//! learning binary autoencoders"*).
//!
//! ParMAC distributes the Method of Auxiliary Coordinates (MAC) over a ring of
//! machines: data and auxiliary coordinates stay put, only submodel parameters
//! circulate, and each submodel is implicitly trained by SGD as it visits every
//! machine. The flagship instantiation learns binary autoencoders (BAs) that
//! produce binary hash codes for fast approximate image retrieval.
//!
//! This crate simply re-exports the workspace members under short names:
//!
//! * [`linalg`] — dense matrices, Cholesky, PCA.
//! * [`data`] — synthetic feature datasets, partitioning, minibatches.
//! * [`optim`] — SGD, linear SVM, ridge/logistic regression, RBF features.
//! * [`cluster`] — ring-topology cluster backends: simulator, threaded, and
//!   the work-stealing pool.
//! * [`hash`] — binary codes, hash encoders/decoders, tPCA and ITQ baselines.
//! * [`retrieval`] — ground truth, Hamming search, precision/recall metrics.
//! * [`core`] — MAC, ParMAC, the K-layer nested-model MAC and the theoretical
//!   speedup model.
//!
//! # Quick start
//!
//! ```
//! use parmac::core::{BaConfig, MacTrainer};
//! use parmac::data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig::new(400, 16, 5).with_seed(7));
//! let cfg = BaConfig::new(8).with_mu_schedule(0.01, 1.5, 6).with_seed(1);
//! let mut trainer = MacTrainer::new(cfg, &data.features);
//! let report = trainer.run(&data.features);
//! assert!(report.final_ba_error <= report.initial_ba_error);
//! ```

pub use parmac_cluster as cluster;
pub use parmac_core as core;
pub use parmac_data as data;
pub use parmac_hash as hash;
pub use parmac_linalg as linalg;
pub use parmac_optim as optim;
pub use parmac_retrieval as retrieval;
